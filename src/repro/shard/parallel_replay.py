"""Shard-parallel replay: partitioned kernel, deterministic merge.

:func:`run_parallel_replay` produces a :class:`ReplayResult` whose
digest is **byte-identical** to :func:`repro.shard.replay.run_replay`
on the same config. The restructuring exploits the replay's barrier
structure: between control ticks no directory mutation, failure,
rebalance, or SLO scrape can happen, so each shard's slot-model drain
is independent by construction. The run is therefore split in two:

* The **main process** owns everything order-sensitive: the trace, the
  partition directory, an exact mirror of the router's bounded route
  cache and epoch fences, the rebalancer, the chaos injector, and the
  observer. Per event it routes the tenant (byte-for-byte the router's
  cache/refresh/stale-retry sequence, including the load window) and
  appends an *op* to the routed shard's buffer.
* **Shard workers** (a :class:`~repro.sim.parallel.SerialPool` or
  ``fork``-based :class:`~repro.sim.parallel.ProcessPool`) own the
  gateways, slot banks, and per-shard metrics. At each control tick —
  and whenever a buffer fills — the main process flushes the op
  streams; a worker replays its shards' ops through the *same*
  ``_advance``/``submit`` machinery the sequential kernel uses, plus a
  batched fast lane for the uncontended case (see below).

Determinism of the merge is by construction, not by sorting after the
fact: every control-plane step (failure victim selection, fault polls,
drain, rebalance, re-homing) runs in the main process in exactly the
sequential order, with worker barriers (gather pendings, drain to the
tick, extract/adopt backlogs) standing in for direct gateway access.
Floating-point state is preserved because each shard's metric
accumulations (``cost_usd``, ``queue_wait_sum``) happen worker-side in
completion order — the same scalar additions, in the same order, as
the sequential run — and the fleet roll-up adds shards in sorted
order either way.

The **fast lane** handles the dominant uncontended case: when a shard
has no backlog, no external admissions, and a free slot, a submission
completes in closed form (``finish = now + service``) without building
a ``QueryRequest``, touching the queue machinery, or running the
dispatch loop. The lane is bit-equivalent to the full path: it draws
the same gateway sequence number, applies the same metric updates in
the same order, and computes latency as ``finish - now`` (the exact
expression the sequential path evaluates). With an observer
attached the workers run the sequential slow path verbatim and tag
every kept completion with ``(event index, phase, firing order)``; the
main process merge-sorts the tags so ``on_completion`` fires in the
byte-exact sequential order.

Two *documented* divergences, both outside the digest: worker
gateways never see a stale epoch (the main-process mirror resolves
staleness before an op is emitted), so ``gateway.stale_rejections``
stays zero worker-side — the result's ``stale_retries`` counter is
authoritative; and telemetry recorded inside forked workers (when a
recorder is enabled) stays in the worker process.
"""

from __future__ import annotations

import hashlib
import heapq
import math
from bisect import bisect_right
from collections import OrderedDict
from functools import partial

from repro.serve.gateway import QueryGateway, Tenant
from repro.shard.directory import PartitionDirectory
from repro.shard.metrics import FleetMetrics, ShardMetrics
from repro.shard.rebalance import Rebalancer
from repro.shard.replay import (
    _ALWAYS,
    _USD_PER_SLOT_SECOND,
    ManualClock,
    ReplayConfig,
    ReplayResult,
    ScanGuard,
    _advance,
    _distinct,
    _quiesce,
    _SlotBank,
)
from repro.shard.router import DEFAULT_ROUTE_CACHE
from repro.sim.parallel import make_pool
from repro.sim.rng import RandomStreams

# The histogram bucket constants, imported so the worker engine can
# inline ``LatencyHistogram.record`` (same expressions, same order —
# the digest pins the equivalence).
from repro.telemetry.metrics import _BUCKETS, _BUCKETS_PER_DECADE, _LOG_MIN
from repro.workloads.traffic import zipf_trace

__all__ = ["ShardWorker", "run_parallel_replay"]

_TOP_BUCKET = _BUCKETS + 1

#: Flush op buffers to the workers at this many buffered events even
#: between ticks. Flush boundaries are transparent — ops carry their
#: own timestamps and workers keep no cross-flush cursor — so this
#: only bounds buffer memory and sizes ProcessPool pickles.
_FLUSH_EVERY = 131_072


class ShardWorker:
    """One worker's shard domains: gateways, slot banks, metrics.

    Constructed inside each pool worker (module-level and picklable so
    a ``fork`` pool can build it via ``functools.partial``). All state
    is instance-owned — nothing module-global is ever mutated, which is
    what keeps the CONC001/CONC002 lint gates green and the domains
    fork-safe.

    ``interest`` is ``None`` for a bare run (enables the fast lane) or
    the observer's unpacked ``(slow_s, salt, cut)`` interest spec, in
    which case every op replays through the sequential slow path and
    kept completions are returned tagged for the main-process merge.
    """

    def __init__(self, config: ReplayConfig,
                 interest: tuple | None = None) -> None:
        self.config = config
        self.interest = interest
        self.clock = ManualClock()
        self.template = Tenant(
            name="__default__",
            max_queue_depth=config.tenant_queue_depth,
            slo_latency_s=config.slo_latency_s)
        self.gateways: dict[str, QueryGateway] = {}
        self.banks: dict[str, _SlotBank] = {}
        #: Every ScanGuard ever created, retired gateways included —
        #: the run's ``full_scans`` proof covers dead shards too.
        self.guards: list[ScanGuard] = []

    # -- domain lifecycle --------------------------------------------------

    def open_shard(self, shard: str) -> None:
        """Create the gateway + slot bank of a newly owned shard."""
        metrics = ShardMetrics(shard_id=shard,
                               slo_latency_s=self.config.slo_latency_s)
        gateway = QueryGateway(
            self.clock, metrics=metrics,
            max_pending=self.config.max_pending_per_shard,
            shard_id=shard, default_tenant=self.template)
        gateway.queues = ScanGuard(gateway.queues)
        gateway.tenants = ScanGuard(gateway.tenants)
        self.guards.append(gateway.queues)
        self.guards.append(gateway.tenants)
        self.gateways[shard] = gateway
        self.banks[shard] = _SlotBank(self.config.slots_per_shard)

    def extract(self, shard: str):
        """Retire a shard (merge/failure): drained backlog + metrics."""
        gateway = self.gateways.pop(shard)
        self.banks.pop(shard)
        return gateway.drain_backlog(), gateway.metrics

    def drain_backlog(self, shard: str):
        """Drain a live shard's backlog (split re-homing)."""
        return self.gateways[shard].drain_backlog()

    def adopt_many(self, shard: str, requests: list) -> None:
        """Adopt re-homed requests, preserving the given order."""
        gateway = self.gateways[shard]
        for request in requests:
            gateway.adopt(request)

    # -- barrier views -----------------------------------------------------

    def pendings(self) -> dict[str, int]:
        return {shard: self.gateways[shard].total_pending
                for shard in self.gateways}

    def tick_view(self) -> dict:
        """Per-shard (pending, metrics) snapshot for the observer."""
        return {shard: (gateway.total_pending, gateway.metrics)
                for shard, gateway in self.gateways.items()}

    def full_scans(self) -> int:
        return sum(guard.full_scans for guard in self.guards)

    # -- the engines -------------------------------------------------------

    def run_ops(self, ops_by_shard: dict, gidxs_by_shard: dict | None):
        """Replay buffered op streams through the owned shards.

        Op encodings (first element is always the virtual time):

        * ``(now, tenant, service)`` — advance, submit, advance-if-
          admitted: the common event.
        * ``(now,)`` — advance only: the *pre* shard of a stale-epoch
          event whose retry re-routed the tenant elsewhere.
        * ``(now, tenant, service, 0)`` — submit without pre-advance:
          the *final* shard of that stale event (the sequential path
          already advanced the pre shard before the retry).
        """
        if gidxs_by_shard is None:
            for shard, ops in ops_by_shard.items():
                self._run_fast(shard, ops)
            return None
        return {shard: self._run_collect(shard, ops, gidxs_by_shard[shard])
                for shard, ops in ops_by_shard.items()}

    def drain_to(self, upto: float):
        """Tick barrier: drain every owned shard to ``upto``."""
        self.clock.now = upto
        out = {}
        for shard in sorted(self.banks):
            kept = self._hooked(
                _advance, self.banks[shard], self.gateways[shard], upto)
            out[shard] = (self.gateways[shard].total_pending, kept)
        return out

    def quiesce_all(self, horizon: float, step: float):
        """End of trace: drain every owned shard past its last job."""
        self.clock.now = horizon
        out = {}
        for shard in sorted(self.banks):
            out[shard] = self._hooked(
                _quiesce, self.banks[shard], self.gateways[shard],
                horizon, step)
        return out

    def _hooked(self, drain, *args):
        """Run a drain; with an observer, collect kept completions."""
        if self.interest is None:
            drain(*args)
            return None
        slow_s, salt, cut = self.interest
        kept: list = []

        def hook(finish: float, shard: str, request) -> None:
            kept.append((finish, shard, request))

        drain(*args, hook, slow_s, salt, cut)
        return kept

    def _run_collect(self, shard: str, ops: list, gidxs: list):
        """Observer path: the sequential slow path, with tagged keeps."""
        gateway = self.gateways[shard]
        bank = self.banks[shard]
        clock = self.clock
        slow_s, salt, cut = self.interest
        kept: list = []
        tag = [0, 0, 0]  # event index, phase, firing order

        def hook(finish: float, shard_id: str, request) -> None:
            kept.append(((tag[0], tag[1], tag[2]), finish, shard_id,
                         request))
            tag[2] += 1

        for op, gidx in zip(ops, gidxs):
            now = op[0]
            clock.now = now
            tag[0] = gidx
            tag[2] = 0
            if len(op) != 4:
                tag[1] = 0
                _advance(bank, gateway, now, hook, slow_s, salt, cut)
                if len(op) == 1:
                    continue
            else:
                tag[1] = 1
            request = gateway.submit(op[1], op[2])
            if request is not None:
                _advance(bank, gateway, now, hook, slow_s, salt, cut)
        return kept

    def _run_fast(self, shard: str, ops: list) -> None:
        """Bare path: inlined dispatch plus the closed-form fast lane.

        Bit-equivalence with the sequential kernel is argued update by
        update: the dispatch block below is ``_next_request`` +
        ``_complete`` + ``ShardMetrics.record_completion`` inlined
        (same arithmetic expressions, same order of float
        accumulation), and the fast lane only fires when the shard has
        no backlog, no external admissions, and a free slot — exactly
        the state in which the full path would offer, admit, dispatch
        at ``start = now``, and complete with no other side effect.
        ``queue_wait_sum += start - submitted_at`` is skipped there
        because the increment is exactly ``+0.0``, the identity on the
        non-negative sum. ``LatencyHistogram.record`` is inlined with
        the same expressions in the same order (``_LOG_MIN``,
        ``_BUCKETS_PER_DECADE``, and the clamp bounds come from
        :mod:`repro.telemetry.metrics` itself), and the worker clock is
        written only on slow-path excursions — ``submit`` is the only
        callee that reads it, so fast-lane and dispatch updates are
        clock-free.
        """
        gateway = self.gateways[shard]
        bank = self.banks[shard]
        clock = self.clock
        metrics = gateway.metrics
        busy = bank.busy
        slots = bank.slots
        slo = metrics.slo_latency_s
        hist = metrics.latency
        counts = hist.counts
        backlog = gateway._backlog
        queues = gateway.queues
        tenants = gateway.tenants
        seq = gateway._seq
        submit = gateway.submit
        heappop = heapq.heappop
        heappush = heapq.heappush
        log10 = math.log10
        fast_ok = (gateway._telemetry is None
                   and gateway.on_submit is None
                   and gateway.max_pending >= 1)

        for op in ops:
            now = op[0]
            n = len(op)
            if n != 4:
                # The pre-advance every non-stale-retry op performs.
                if backlog:
                    while busy and busy[0] <= now:
                        freed = heappop(busy)
                        if not backlog:
                            continue
                        name = next(iter(backlog))
                        queue = queues[name]
                        request = queue.popleft()
                        gateway._pending -= 1
                        if not queue:
                            del backlog[name]
                            if name not in tenants:
                                del queues[name]
                        else:
                            del backlog[name]
                            backlog[name] = None
                        submitted = request.submitted_at
                        start = freed if freed >= submitted else submitted
                        plan = request.plan
                        finish = start + plan
                        metrics.completed += 1
                        latency = finish - submitted
                        if latency <= 0.0:
                            counts[0] += 1
                        else:
                            bucket = int((log10(latency) - _LOG_MIN)
                                         * _BUCKETS_PER_DECADE) + 1
                            if bucket < 0:
                                bucket = 0
                            elif bucket > _TOP_BUCKET:
                                bucket = _TOP_BUCKET
                            counts[bucket] += 1
                        hist.total += 1
                        metrics.queue_wait_sum += start - submitted
                        metrics.cost_usd += plan * _USD_PER_SLOT_SECOND
                        if latency <= slo:
                            metrics.within_slo += 1
                        heappush(busy, finish)
                    while backlog and len(busy) < slots:
                        name = next(iter(backlog))
                        queue = queues[name]
                        request = queue.popleft()
                        gateway._pending -= 1
                        if not queue:
                            del backlog[name]
                            if name not in tenants:
                                del queues[name]
                        else:
                            del backlog[name]
                            backlog[name] = None
                        submitted = request.submitted_at
                        plan = request.plan
                        finish = now + plan
                        metrics.completed += 1
                        latency = finish - submitted
                        if latency <= 0.0:
                            counts[0] += 1
                        else:
                            bucket = int((log10(latency) - _LOG_MIN)
                                         * _BUCKETS_PER_DECADE) + 1
                            if bucket < 0:
                                bucket = 0
                            elif bucket > _TOP_BUCKET:
                                bucket = _TOP_BUCKET
                            counts[bucket] += 1
                        hist.total += 1
                        metrics.queue_wait_sum += now - submitted
                        metrics.cost_usd += plan * _USD_PER_SLOT_SECOND
                        if latency <= slo:
                            metrics.within_slo += 1
                        heappush(busy, finish)
                else:
                    while busy and busy[0] <= now:
                        heappop(busy)
                if n == 1:
                    continue
                if (fast_ok and not backlog and gateway._external == 0
                        and len(busy) < slots):
                    metrics.offered += 1
                    next(seq)
                    finish = now + op[2]
                    metrics.completed += 1
                    latency = finish - now
                    if latency <= 0.0:
                        counts[0] += 1
                    else:
                        bucket = int((log10(latency) - _LOG_MIN)
                                     * _BUCKETS_PER_DECADE) + 1
                        if bucket < 0:
                            bucket = 0
                        elif bucket > _TOP_BUCKET:
                            bucket = _TOP_BUCKET
                        counts[bucket] += 1
                    hist.total += 1
                    metrics.cost_usd += op[2] * _USD_PER_SLOT_SECOND
                    if latency <= slo:
                        metrics.within_slo += 1
                    heappush(busy, finish)
                else:
                    clock.now = now
                    request = submit(op[1], op[2])
                    if request is not None:
                        _advance(bank, gateway, now)
            else:
                # Stale retry's re-routed submit: no pre-advance ran
                # on this shard (the sequential path advanced the
                # *pre* shard before retrying here).
                if fast_ok and not backlog and gateway._external == 0:
                    while busy and busy[0] <= now:
                        heappop(busy)
                    if len(busy) < slots:
                        metrics.offered += 1
                        next(seq)
                        finish = now + op[2]
                        metrics.completed += 1
                        latency = finish - now
                        if latency <= 0.0:
                            counts[0] += 1
                        else:
                            bucket = int((log10(latency) - _LOG_MIN)
                                         * _BUCKETS_PER_DECADE) + 1
                            if bucket < 0:
                                bucket = 0
                            elif bucket > _TOP_BUCKET:
                                bucket = _TOP_BUCKET
                            counts[bucket] += 1
                        hist.total += 1
                        metrics.cost_usd += op[2] * _USD_PER_SLOT_SECOND
                        if latency <= slo:
                            metrics.within_slo += 1
                        heappush(busy, finish)
                        continue
                clock.now = now
                request = submit(op[1], op[2])
                if request is not None:
                    _advance(bank, gateway, now)


class _GatewayStub:
    """What the main process knows about a worker-owned gateway."""

    __slots__ = ("total_pending",)

    def __init__(self) -> None:
        self.total_pending = 0


class _ParallelFleet:
    """The main-process fleet facade: router mirror + worker barriers.

    To the :class:`~repro.shard.rebalance.Rebalancer` and the observer
    this object *is* the router — same ``directory`` / ``gateways`` /
    ``shard_metrics`` / ``migrated`` attributes, same
    ``take_load_window`` / ``split_shard`` / ``merge_shard`` /
    ``fail_shard`` / ``roll_up`` methods, driven by the same call
    sequence — except gateway state lives in the workers and is
    reached through barrier calls. Every mutation replays the
    sequential router's steps in the sequential order, so the
    directory, epoch fences, route cache, rebalance history, and
    recovered counts evolve identically.
    """

    def __init__(self, config: ReplayConfig, pool) -> None:
        self.config = config
        self.pool = pool
        self.directory = PartitionDirectory(shards=config.shards)
        self.fleet = FleetMetrics()
        self.route_cache_size = DEFAULT_ROUTE_CACHE
        self.gateways: dict[str, _GatewayStub] = {}
        self.shard_metrics: dict[str, ShardMetrics] = {}
        self.assign: dict[str, int] = {}
        self._spawned = 0
        self.routes: OrderedDict = OrderedDict()
        self.epochs: dict[str, int] = {}
        self.window: dict[str, int] = {}
        self.migrated = 0
        for shard in self.directory.shards():
            self._spawn(shard)

    # -- membership --------------------------------------------------------

    def shards(self) -> list[str]:
        return sorted(self.gateways)

    def _spawn(self, shard: str) -> None:
        worker = self._spawned % self.pool.workers
        self._spawned += 1
        self.assign[shard] = worker
        self.pool.call(worker, "open_shard", shard)
        self.gateways[shard] = _GatewayStub()
        # Placeholder until the next barrier snapshot: identical to
        # the fresh worker-side metrics, so an observer tick that
        # lands between spawn and snapshot reads the right zeros.
        self.shard_metrics[shard] = ShardMetrics(
            shard_id=shard, slo_latency_s=self.config.slo_latency_s)
        self.window[shard] = 0
        self.epochs[shard] = self.directory.shard_epoch(shard)

    def _retire(self, shard: str) -> tuple[int, list]:
        """Pop a shard everywhere; extract its backlog + final metrics."""
        worker = self.assign.pop(shard)
        self.gateways.pop(shard)
        self.window.pop(shard)
        self.epochs.pop(shard)
        orphans, metrics = self.pool.call(worker, "extract", shard)
        self.shard_metrics[shard] = metrics
        return worker, orphans

    def _sync_fences(self) -> None:
        for shard in sorted(self.gateways):
            self.epochs[shard] = self.directory.shard_epoch(shard)

    # -- data-plane mirror -------------------------------------------------

    def _refresh(self, tenant: str) -> tuple[str, int]:
        """Re-locate a tenant and cache the ``(shard, epoch)`` route.

        The mirror caches plain tuples rather than
        :class:`~repro.shard.directory.Route` objects — same fields,
        same FIFO bound and eviction order as the router's cache, but
        cheap enough to build a million times on the hot path (the
        event loop inlines this exact sequence).
        """
        located = self.directory.locate(tenant)
        route = (located.shard, located.epoch)
        routes = self.routes
        if tenant not in routes and len(routes) >= self.route_cache_size:
            routes.popitem(last=False)
        routes[tenant] = route
        return route

    # -- rebalancer protocol -----------------------------------------------

    def take_load_window(self) -> dict[str, int]:
        window = {shard: self.window[shard]
                  for shard in sorted(self.window)}
        for shard in window:
            self.window[shard] = 0
        return window

    def pending_total(self) -> int:
        return sum(self.gateways[shard].total_pending
                   for shard in sorted(self.gateways))

    def roll_up(self):
        return self.fleet.roll_up(
            [self.shard_metrics[shard]
             for shard in sorted(self.shard_metrics)],
            pending=self.pending_total())

    # -- control plane -----------------------------------------------------

    def _rehome(self, orphans: list) -> None:
        """Re-adopt recovered requests on their directory owners.

        The per-target adoption order equals the drain order (the
        sequential ``_rehome`` adopts one by one; grouping per target
        preserves each gateway's sequence), and the route-cache
        refreshes replay in drain order too.
        """
        groups: dict[str, list] = {}
        for request in orphans:
            request.rescued = True
            target = self._refresh(request.tenant)[0]
            bucket = groups.get(target)
            if bucket is None:
                bucket = groups[target] = []
            bucket.append(request)
        for target in sorted(groups):
            self.pool.call(self.assign[target], "adopt_many", target,
                           groups[target])
        self.fleet.recovered_requests += len(orphans)

    def _resettle(self, owner: str) -> int:
        orphans = self.pool.call(self.assign[owner], "drain_backlog",
                                 owner)
        stay: list = []
        groups: dict[str, list] = {}
        moved = 0
        for request in orphans:
            target = self._refresh(request.tenant)[0]
            if target == owner:
                stay.append(request)
            else:
                bucket = groups.get(target)
                if bucket is None:
                    bucket = groups[target] = []
                bucket.append(request)
                moved += 1
        for target in sorted(groups):
            self.pool.call(self.assign[target], "adopt_many", target,
                           groups[target])
        if stay:
            self.pool.call(self.assign[owner], "adopt_many", owner, stay)
        return moved

    def split_shard(self, hot: str) -> str:
        new = self.directory.split_shard(hot)
        self._spawn(new)
        self._sync_fences()
        self.migrated += self._resettle(hot)
        return new

    def merge_shard(self, cold: str, target: str) -> int:
        _worker, orphans = self._retire(cold)
        self.directory.merge_shard(cold, target)
        self._sync_fences()
        self._rehome(orphans)
        return len(orphans)

    def fail_shard(self, dead: str) -> int:
        _worker, orphans = self._retire(dead)
        self.directory.fail_shard(dead)
        self._sync_fences()
        self._rehome(orphans)
        return len(orphans)

    # -- barriers ----------------------------------------------------------

    def _every_worker(self, method: str, *args) -> list:
        return self.pool.scatter(
            [(worker, method, args)
             for worker in range(self.pool.workers)])

    def gather_pendings(self) -> dict[str, int]:
        merged: dict[str, int] = {}
        for payload in self._every_worker("pendings"):
            for shard, pending in payload.items():
                self.gateways[shard].total_pending = pending
                merged[shard] = pending
        return merged

    def drain_to(self, upto: float) -> dict[str, list]:
        """The tick barrier; returns kept completions per shard."""
        kept_by_shard: dict[str, list] = {}
        for payload in self._every_worker("drain_to", upto):
            for shard, (pending, kept) in payload.items():
                self.gateways[shard].total_pending = pending
                if kept:
                    kept_by_shard[shard] = kept
        return kept_by_shard

    def quiesce(self, horizon: float, step: float) -> dict[str, list]:
        kept_by_shard: dict[str, list] = {}
        for payload in self._every_worker("quiesce_all", horizon, step):
            for shard, kept in payload.items():
                self.gateways[shard].total_pending = 0
                if kept:
                    kept_by_shard[shard] = kept
        return kept_by_shard

    def refresh_view(self) -> None:
        """Pull pending counts + metric snapshots for the observer."""
        for payload in self._every_worker("tick_view"):
            for shard, (pending, metrics) in payload.items():
                self.gateways[shard].total_pending = pending
                self.shard_metrics[shard] = metrics

    def gather_full_scans(self) -> int:
        return sum(self._every_worker("full_scans"))


def run_parallel_replay(config: ReplayConfig, observer=None,
                        workers: int = 0) -> ReplayResult:
    """The shard-parallel replay; digest-identical to ``run_replay``.

    ``workers=0`` runs the partitioned kernel in-process (the honest —
    and fastest — configuration on a single-core host: all the batched
    engine, none of the IPC); ``workers=n`` forks ``n`` shard-worker
    processes when the platform supports it. The returned result, its
    digest, and every observer callback sequence are independent of
    ``workers`` — the equality tests sweep it.
    """
    streams = RandomStreams(config.seed)
    times, ids = zipf_trace(
        streams.stream("shard.trace"), config.tenants, config.events,
        config.window_s, s=config.zipf_s)
    services = streams.stream("shard.service").exponential(
        config.mean_service_s, size=config.events)

    slow_s, salt, cut = _ALWAYS, 0, 0
    interest = None
    if observer is not None:
        spec = getattr(observer, "completion_interest", None)
        if spec is not None:
            slow_s, salt, cut = spec
        interest = (slow_s, salt, cut)
    on_completion = observer.on_completion if observer is not None else None

    pool = make_pool(partial(ShardWorker, config, interest), workers)
    try:
        fleet = _ParallelFleet(config, pool)
        rebalancer = Rebalancer(
            fleet, seed=config.seed, hot_factor=config.hot_factor,
            cold_factor=config.cold_factor, min_shards=1,
            max_shards=config.max_shards)
        injector = None
        if config.fault_plan:
            from repro.chaos.injector import FaultInjector
            from repro.chaos.plan import get_plan
            injector = FaultInjector(get_plan(config.fault_plan),
                                     RandomStreams(config.seed))
            if observer is not None:
                injector.observer = observer

        pending_failures = sorted(config.fail_at)
        failures = 0
        submits = 0
        stale_retries = 0
        next_control = config.control_interval_s

        # Hot-loop locals: the same dict/list objects the facade
        # mutates in place, bound once.
        routes = fleet.routes
        routes_get = routes.get
        routes_popitem = routes.popitem
        refresh = fleet._refresh
        gateways = fleet.gateways
        epochs = fleet.epochs
        window = fleet.window
        times_list = times.tolist()
        ids_list = ids.tolist()
        services_list = services.tolist()
        collect = observer is not None

        # Directory internals for the inlined route-miss path (the
        # exact ``locate`` + ``HashRing.lookup`` sequence, minus the
        # call layers). ``_overrides``, ``_shard_epochs``, and
        # ``_owner`` mutate in place, but ``remove_node`` *rebinds*
        # ``_points`` — so the ring locals are re-hoisted after every
        # control tick, the only point the directory can mutate.
        directory = fleet.directory
        overrides_get = directory._overrides.get
        dir_epochs = directory._shard_epochs
        ring = directory.ring
        points = ring._points
        owner = ring._owner
        sha256 = hashlib.sha256
        from_bytes = int.from_bytes
        cache_cap = fleet.route_cache_size

        shard_ops: dict[str, list] = {}
        shard_gidx: dict[str, list] = {}
        buffered = 0

        def flush() -> None:
            nonlocal buffered
            if not buffered:
                return
            per_worker: dict[int, dict] = {}
            for shard, ops in shard_ops.items():
                per_worker.setdefault(fleet.assign[shard], {})[shard] = ops
            calls = []
            for worker in sorted(per_worker):
                gidxs = None
                if collect:
                    gidxs = {shard: shard_gidx[shard]
                             for shard in per_worker[worker]}
                calls.append((worker, "run_ops",
                              (per_worker[worker], gidxs)))
            results = pool.scatter(calls)
            if collect:
                merged: list = []
                for payload in results:
                    if payload:
                        for kept in payload.values():
                            merged.extend(kept)
                merged.sort(key=lambda entry: entry[0])
                for _tag, finish, shard, request in merged:
                    on_completion(finish, shard, request)
            shard_ops.clear()
            shard_gidx.clear()
            buffered = 0

        def deliver(kept_by_shard: dict[str, list]) -> None:
            for shard in sorted(kept_by_shard):
                for finish, shard_id, request in kept_by_shard[shard]:
                    on_completion(finish, shard_id, request)

        def kill(victim: str) -> None:
            nonlocal failures
            orphans = fleet.fail_shard(victim)
            failures += 1
            if observer is not None:
                observer.on_shard_failure(next_control, victim, orphans)

        for index in range(config.events):
            now = times_list[index]
            if now >= next_control:
                while now >= next_control:
                    flush()
                    # Failures fire on the un-drained state, exactly as
                    # in the sequential kernel; the pending gather is
                    # re-run per kill so a second victim sees adopted
                    # orphans.
                    while pending_failures \
                            and pending_failures[0] <= next_control:
                        pending_failures.pop(0)
                        if len(gateways) > 1:
                            depth = fleet.gather_pendings()
                            victim = max(sorted(depth),
                                         key=lambda s: depth[s])
                            kill(victim)
                    if injector is not None:
                        for shard in fleet.shards():
                            if len(gateways) > 1 \
                                    and injector.on_shard(shard,
                                                          next_control):
                                kill(shard)
                    drained = fleet.drain_to(next_control)
                    if collect:
                        deliver(drained)
                    rebalancer.step(next_control)
                    if collect:
                        fleet.refresh_view()
                        observer.on_control_tick(next_control, fleet)
                    next_control += config.control_interval_s
                points = ring._points
                owner = ring._owner

            tenant = f"t{ids_list[index]}"
            route = routes_get(tenant)
            if route is None or route[0] not in gateways:
                # Inlined ``_refresh``: override lookup, then the
                # ring's hash/bisect walk, then the FIFO cache insert
                # — expression for expression the directory's
                # ``locate`` and ``HashRing.lookup``.
                shard = overrides_get(tenant)
                if shard is None:
                    i = bisect_right(points, from_bytes(
                        sha256(tenant.encode("utf-8")).digest()[:8],
                        "little"))
                    if i == len(points):
                        i = 0
                    shard = owner[points[i]]
                route = (shard, dir_epochs[shard])
                if tenant not in routes and len(routes) >= cache_cap:
                    routes_popitem(last=False)
                routes[tenant] = route
            else:
                shard = route[0]
            submits += 1
            if route[1] != epochs[shard]:
                stale_retries += 1
                route = refresh(tenant)
                final = route[0]
                if route[1] != epochs[final]:
                    raise RuntimeError(
                        f"route of tenant {tenant!r} stale after "
                        f"directory refresh")
                if final == shard:
                    ops = shard_ops.get(final)
                    if ops is None:
                        ops = shard_ops[final] = []
                        if collect:
                            shard_gidx[final] = []
                    ops.append((now, tenant, services_list[index]))
                    if collect:
                        shard_gidx[final].append(index)
                else:
                    ops = shard_ops.get(shard)
                    if ops is None:
                        ops = shard_ops[shard] = []
                        if collect:
                            shard_gidx[shard] = []
                    ops.append((now,))
                    if collect:
                        shard_gidx[shard].append(index)
                    ops = shard_ops.get(final)
                    if ops is None:
                        ops = shard_ops[final] = []
                        if collect:
                            shard_gidx[final] = []
                    ops.append((now, tenant, services_list[index], 0))
                    if collect:
                        shard_gidx[final].append(index)
                window[final] += 1
                buffered += 2
            else:
                ops = shard_ops.get(shard)
                if ops is None:
                    ops = shard_ops[shard] = []
                    if collect:
                        shard_gidx[shard] = []
                ops.append((now, tenant, services_list[index]))
                if collect:
                    shard_gidx[shard].append(index)
                window[shard] += 1
                buffered += 1
            if buffered >= _FLUSH_EVERY:
                flush()

        flush()
        quiesced = fleet.quiesce(config.window_s, config.mean_service_s)
        if collect:
            deliver(quiesced)
        fleet.refresh_view()
        if observer is not None:
            observer.on_end(config.window_s, fleet)

        report = fleet.roll_up()
        return ReplayResult(
            report=report.to_dict(),
            rebalances=rebalancer.history(),
            distinct_tenants=_distinct(ids),
            events=config.events,
            shards_final=len(fleet.gateways),
            submits=submits,
            stale_retries=stale_retries,
            migrated=fleet.migrated,
            recovered=fleet.fleet.recovered_requests,
            full_scans=fleet.gather_full_scans(),
            failures_injected=failures,
            extra={"engine": "parallel", "workers": workers,
                   "pool": type(pool).__name__})
    finally:
        pool.close()
