"""Sharded serving fabric: consistent-hash routing at million-tenant scale.

The serving layer's :class:`~repro.serve.gateway.QueryGateway` models
one admission domain; this package scales it out into a *fleet* of
gateway shards behind a router, the shape Skyrise's elastic serving
tier (and every commodity serverless platform's per-account concurrency
ceiling) forces at millions-of-users scale:

* :mod:`repro.shard.ring` — a consistent-hash ring of virtual nodes
  mapping tenant keys to shards, with targeted split/merge moves that
  remap only the affected shard's key ranges;
* :mod:`repro.shard.directory` — the :class:`PartitionDirectory`, the
  authoritative shard map with per-shard versioned epochs that fence
  stale routes;
* :mod:`repro.shard.router` — the :class:`ShardRouter` fronting the
  gateway fleet: O(1)-per-event routing with a route cache, lazy tenant
  materialization, and epoch-fenced retry on rebalanced routes;
* :mod:`repro.shard.rebalance` — the :class:`Rebalancer`: splits hot
  shards, merges cold ones, and re-homes the backlog of failed shards,
  deterministically on the virtual clock;
* :mod:`repro.shard.metrics` — per-shard streaming serving metrics and
  the fleet-level roll-up (aggregate p50/p99, SLO, shed/recovered) with
  a conservation check (offered = completed + shed + failed + pending);
* :mod:`repro.shard.replay` — deterministic high-QPS trace replay over
  the fabric (the `sharded-serving` bench scenario and
  ``repro shard --smoke``);
* :mod:`repro.shard.parallel_replay` — the shard-parallel kernel: the
  same replay partitioned by shard domain over worker processes (or an
  in-process pool) with a deterministic merge, digest-identical to the
  sequential path.
"""

from repro.shard.directory import PartitionDirectory, Route
from repro.shard.metrics import FleetMetrics, LatencyHistogram, ShardMetrics
from repro.shard.parallel_replay import run_parallel_replay
from repro.shard.rebalance import RebalanceEvent, Rebalancer
from repro.shard.replay import ReplayConfig, run_replay, run_unsharded_replay
from repro.shard.ring import HashRing
from repro.shard.router import ShardRouter

__all__ = [
    "FleetMetrics",
    "HashRing",
    "LatencyHistogram",
    "PartitionDirectory",
    "RebalanceEvent",
    "Rebalancer",
    "ReplayConfig",
    "Route",
    "ShardMetrics",
    "ShardRouter",
    "run_parallel_replay",
    "run_replay",
    "run_unsharded_replay",
]
