"""Consistent-hash ring: the partition function of the serving fabric.

Tenant keys and virtual-node points hash onto the same 64-bit circle;
a key belongs to the node owning the first point at or after the key's
hash (wrapping at the top). Virtual nodes smooth the load: with ``V``
points per node, adding a node to an ``N``-node ring remaps an expected
``1/(N+1)`` of the key space, and every remapped key moves *to* the new
node — the locality property the hypothesis suite pins down.

Beyond the classic add/remove, the ring supports two *targeted* moves
the rebalancer needs:

* :meth:`HashRing.split_node` hands every other point of a hot node to
  a fresh node — only the hot node's ranges are touched, so only its
  keys remap;
* :meth:`HashRing.merge_node` relabels a cold node's points to a target
  node — no point moves position, so keys of *other* nodes never remap.

Hashing is SHA-256-based (the same recipe as the RNG stream naming), so
placement depends only on the key and node names — never on insertion
order, process ids, or Python's hash randomization.
"""

from __future__ import annotations

import hashlib
from bisect import bisect_right, insort

#: Virtual-node points per shard. 64 keeps the coefficient of variation
#: of per-shard key share under ~15% while a lookup stays a handful of
#: comparisons (bisect over shards x 64 points).
DEFAULT_VNODES = 64


def hash_key(key: str) -> int:
    """Stable 64-bit position of ``key`` on the ring."""
    raw = hashlib.sha256(key.encode("utf-8")).digest()
    return int.from_bytes(raw[:8], "little")


class HashRing:
    """A consistent-hash ring of named nodes with virtual points."""

    def __init__(self, vnodes: int = DEFAULT_VNODES) -> None:
        if vnodes <= 0:
            raise ValueError("vnodes must be positive")
        self.vnodes = vnodes
        #: Sorted virtual-node positions; ``_owner[pos]`` names the node
        #: owning the arc that *ends* at ``pos``.
        self._points: list[int] = []
        self._owner: dict[int, str] = {}
        self._node_points: dict[str, list[int]] = {}

    # -- membership --------------------------------------------------------

    def nodes(self) -> list[str]:
        """Member node names, sorted."""
        return sorted(self._node_points)

    def __len__(self) -> int:
        return len(self._node_points)

    def __contains__(self, name: str) -> bool:
        return name in self._node_points

    def points_of(self, name: str) -> list[int]:
        """The virtual points a node currently owns (sorted)."""
        return sorted(self._node_points[name])

    def add_node(self, name: str, vnodes: int | None = None) -> list[int]:
        """Insert a node; returns its points. Raises if already present."""
        if name in self._node_points:
            raise ValueError(f"node {name!r} is already on the ring")
        count = self.vnodes if vnodes is None else vnodes
        points = []
        for index in range(count):
            position = hash_key(f"{name}#{index}")
            while position in self._owner:  # 64-bit collision: step on
                position = (position + 1) % (1 << 64)
            insort(self._points, position)
            self._owner[position] = name
            points.append(position)
        self._node_points[name] = points
        return points

    def remove_node(self, name: str) -> list[int]:
        """Remove a node; its ranges fall to ring successors."""
        points = self._node_points.pop(name)
        vacated = set(points)
        self._points = [p for p in self._points if p not in vacated]
        for position in points:
            del self._owner[position]
        return points

    def successors(self, points: list[int]) -> list[str]:
        """Nodes owning the arcs just after ``points`` (sorted, unique).

        These are exactly the nodes whose key ranges grow when the
        given points are vacated — the set whose epochs a directory
        must bump on a removal.
        """
        owners = {self._owner[self._points[
            bisect_right(self._points, position) % len(self._points)]]
            for position in points} if self._points else set()
        return sorted(owners)

    # -- targeted rebalance moves ------------------------------------------

    def split_node(self, name: str, new_name: str) -> int:
        """Move every other point of ``name`` to ``new_name``.

        Only keys inside the split node's former ranges remap (all of
        them to ``new_name``); every other node's mapping is untouched.
        Returns the number of points moved.
        """
        if new_name in self._node_points:
            raise ValueError(f"node {new_name!r} is already on the ring")
        points = sorted(self._node_points[name])
        if len(points) < 2:
            raise ValueError(f"node {name!r} has too few points to split")
        moved = points[1::2]
        self._node_points[name] = points[0::2]
        self._node_points[new_name] = list(moved)
        for position in moved:
            self._owner[position] = new_name
        return len(moved)

    def merge_node(self, source: str, target: str) -> int:
        """Relabel every point of ``source`` as ``target``'s.

        No point changes position, so only keys previously owned by
        ``source`` remap — and all of them to ``target``. Returns the
        number of points transferred.
        """
        if source == target:
            raise ValueError("cannot merge a node into itself")
        points = self._node_points.pop(source)
        self._node_points[target].extend(points)
        for position in points:
            self._owner[position] = target
        return len(points)

    # -- lookup ------------------------------------------------------------

    def lookup(self, key: str) -> str:
        """The node owning ``key`` (the partition function)."""
        if not self._points:
            raise LookupError("lookup on an empty ring")
        index = bisect_right(self._points, hash_key(key))
        if index == len(self._points):
            index = 0
        return self._owner[self._points[index]]
