"""Per-shard streaming metrics and the fleet-level roll-up.

A million-tenant replay cannot afford the serve layer's per-query
record keeping (:class:`~repro.serve.metrics.ServingMetrics` files a
``CompletedQuery`` per served query), so each gateway shard gets a
:class:`ShardMetrics`: the same recording interface, but reduced on the
fly to counters plus a fixed-width log-bucketed latency histogram —
O(1) memory per event, deterministic percentiles.

:class:`FleetMetrics` rolls the per-shard views into the fleet numbers
operators watch — aggregate p50/p99 latency, SLO attainment, shed and
recovered counts, cost — and, crucially, *reconciles* them: every
query a tenant ever offered must be accounted for as completed, shed,
failed, or still pending. Rebalancing and shard failure move requests
between shards; the conservation check is what proves none fell
through the cracks.
"""

from __future__ import annotations

import math
from dataclasses import dataclass, field

# The histogram itself now lives in the telemetry layer (shared with
# the Histogram instrument and the obs plane); re-exported here because
# the shard facade and its tests name it.
from repro.telemetry.metrics import LatencyHistogram

__all__ = ["FleetMetrics", "FleetReport", "LatencyHistogram",
           "ShardMetrics"]


class ShardMetrics:
    """Streaming serving metrics of one gateway shard.

    Implements the recording interface of
    :class:`~repro.serve.metrics.ServingMetrics` (``record_offered`` /
    ``record_shed`` / ``record_completion`` / ``record_failed``) so a
    :class:`~repro.serve.gateway.QueryGateway` can use either, but
    keeps only scalars and a histogram — no per-query, no per-tenant
    state.
    """

    def __init__(self, shard_id: str = "shard-0",
                 slo_latency_s: float = math.inf) -> None:
        self.shard_id = shard_id
        self.slo_latency_s = slo_latency_s
        self.offered = 0
        self.shed = 0
        self.completed = 0
        self.failed = 0
        self.within_slo = 0
        self.recovered = 0
        self.cost_usd = 0.0
        self.queue_wait_sum = 0.0
        self.latency = LatencyHistogram()

    # -- the ServingMetrics recording interface ----------------------------

    def record_offered(self, tenant: str) -> None:
        self.offered += 1

    def record_shed(self, tenant: str, at: float) -> None:
        self.shed += 1

    def record_completion(self, record) -> None:
        self.completed += 1
        latency = record.finished_at - record.submitted_at
        self.latency.record(latency)
        self.queue_wait_sum += record.started_at - record.submitted_at
        self.cost_usd += record.cost_usd
        if latency <= self.slo_latency_s:
            self.within_slo += 1
        if record.retries or record.hedges:
            self.recovered += 1

    def record_failed(self, tenant: str, at: float) -> None:
        self.failed += 1

    def record_external_done(self, tenant: str, at: float) -> None:
        """An admitted external unit (futures job) released its slot.

        Counted as completed — without it, external work would be
        offered but never resolved and the fleet roll-up could not
        reconcile. No latency sample: external units carry no query
        SLO, so they leave the histogram (and ``within_slo``) alone.
        """
        self.completed += 1

    # -- views -------------------------------------------------------------

    def summary(self) -> dict:
        """JSON-ready per-shard reduction (stable keys)."""
        return {
            "shard": self.shard_id,
            "offered": self.offered,
            "completed": self.completed,
            "shed": self.shed,
            "failed": self.failed,
            "recovered": self.recovered,
            "p50": self.latency.percentile(50.0),
            "p99": self.latency.percentile(99.0),
            "cost_usd": round(self.cost_usd, 9),
        }


@dataclass
class FleetReport:
    """The fleet-level roll-up of every shard's serving metrics."""

    shards: int
    offered: int
    completed: int
    shed: int
    failed: int
    recovered: int
    pending: int
    latency_p50: float
    latency_p99: float
    mean_queue_wait: float
    slo_attainment: float
    cost_usd: float
    per_shard: list[dict] = field(default_factory=list)
    #: Optional SLO-engine roll-up (error budgets, burn-rate alerts)
    #: attached by the obs plane. ``None`` — the default — keeps the
    #: serialized report (and every digest derived from it) unchanged
    #: for runs without an observability plane.
    slo: dict | None = None

    @property
    def balanced(self) -> bool:
        """Conservation: every offered query is accounted for."""
        return self.offered == (self.completed + self.shed + self.failed
                                + self.pending)

    def to_dict(self) -> dict:
        out = {
            "shards": self.shards,
            "offered": self.offered,
            "completed": self.completed,
            "shed": self.shed,
            "failed": self.failed,
            "recovered": self.recovered,
            "pending": self.pending,
            "balanced": self.balanced,
            "latency_p50": round(self.latency_p50, 9),
            "latency_p99": round(self.latency_p99, 9),
            "mean_queue_wait": round(self.mean_queue_wait, 9),
            "slo_attainment": round(self.slo_attainment, 9),
            "cost_usd": round(self.cost_usd, 9),
            "per_shard": self.per_shard,
        }
        if self.slo is not None:
            out["slo"] = self.slo
        return out


class FleetMetrics:
    """Aggregates shard metrics into one fleet view.

    ``recovered_requests`` counts requests the rebalancer re-homed out
    of merged or failed shards — queries that would have been *lost*
    without recovery; they surface in the roll-up next to the
    retry/hedge-recovered completions.
    """

    def __init__(self) -> None:
        #: Requests re-homed out of merged/failed shards.
        self.recovered_requests = 0

    def roll_up(self, shard_metrics: list[ShardMetrics],
                pending: int = 0) -> FleetReport:
        """Reduce per-shard metrics to a :class:`FleetReport`.

        ``pending`` is the backlog still queued across live gateways
        (zero after a drained run) — it closes the conservation
        equation mid-run.
        """
        merged = LatencyHistogram()
        offered = completed = shed = failed = recovered = 0
        within = 0
        wait_sum = 0.0
        cost = 0.0
        for metrics in shard_metrics:
            merged.merge(metrics.latency)
            offered += metrics.offered
            completed += metrics.completed
            shed += metrics.shed
            failed += metrics.failed
            recovered += metrics.recovered
            within += metrics.within_slo
            wait_sum += metrics.queue_wait_sum
            cost += metrics.cost_usd
        return FleetReport(
            shards=len(shard_metrics),
            offered=offered,
            completed=completed,
            shed=shed,
            failed=failed,
            recovered=recovered + self.recovered_requests,
            pending=pending,
            latency_p50=merged.percentile(50.0),
            latency_p99=merged.percentile(99.0),
            mean_queue_wait=wait_sum / completed if completed else 0.0,
            slo_attainment=within / offered if offered else 1.0,
            cost_usd=cost,
            per_shard=[metrics.summary() for metrics in shard_metrics])
