"""The rebalancer: splits hot shards, merges cold ones, on the clock.

The control loop the paper's elasticity argument implies: per-shard
admission capacity is fixed (a Lambda account quota per cell), so the
*fleet* absorbs skew by changing shape. Each :meth:`Rebalancer.step`
reads one load window from the router (submissions since the last step
plus current backlog), and

* **splits** the hottest shard when its load exceeds ``hot_factor``
  times the fleet mean (skew the hash ring alone cannot flatten —
  a Zipf head tenant pinned to one shard);
* **merges** the coldest shard into the lightest remaining one when
  its load falls below ``cold_factor`` times the mean — capacity
  consolidation on the trough of the diurnal cycle.

At most one split and one merge fire per step, so churn is bounded by
the control cadence. Every decision is deterministic: candidates are
ranked by (load, shard id), and the seeded stream breaks exact load
ties — the same trace and seed always produce the same fleet history.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.sim.rng import RandomStreams
from repro.telemetry import get_recorder


@dataclass(frozen=True)
class RebalanceEvent:
    """One control-plane decision, as recorded fleet history."""

    at: float
    action: str          # "split" | "merge"
    shard: str           # the shard acted on
    peer: str            # the split child or the merge target
    load: int            # the acted-on shard's load this window
    mean_load: float     # fleet mean load this window
    moved: int           # requests re-homed by the move


class Rebalancer:
    """Drives split/merge decisions from the router's load windows."""

    def __init__(self, router, seed: int = 0,
                 hot_factor: float = 2.0,
                 cold_factor: float = 0.25,
                 min_shards: int = 1,
                 max_shards: int = 64,
                 min_window: int = 1) -> None:
        if hot_factor <= 1.0:
            raise ValueError("hot_factor must exceed 1.0")
        if not 0.0 <= cold_factor < 1.0:
            raise ValueError("cold_factor must be in [0, 1)")
        if min_shards < 1 or max_shards < min_shards:
            raise ValueError("need 1 <= min_shards <= max_shards")
        self.router = router
        self.hot_factor = hot_factor
        self.cold_factor = cold_factor
        self.min_shards = min_shards
        self.max_shards = max_shards
        #: Ignore windows with less total load than this — thresholds
        #: on a near-empty window are noise, not skew.
        self.min_window = min_window
        self._rng = RandomStreams(seed).stream("shard.rebalancer")
        self.events: list[RebalanceEvent] = []
        self.steps = 0
        recorder = get_recorder()
        self._telemetry = recorder if recorder.enabled else None
        if self._telemetry is not None:
            self._load_series: dict = {}

    # -- load signal -------------------------------------------------------

    def _loads(self) -> dict[str, int]:
        window = self.router.take_load_window()
        return {shard: window[shard]
                + self.router.gateways[shard].total_pending
                for shard in sorted(window)}

    def _pick(self, candidates: list[str], loads: dict[str, int],
              extreme) -> str:
        """The candidate with the extreme load; seeded tie-break."""
        target = extreme(loads[shard] for shard in candidates)
        tied = [shard for shard in candidates if loads[shard] == target]
        if len(tied) == 1:
            return tied[0]
        return tied[int(self._rng.integers(0, len(tied)))]

    # -- the control step --------------------------------------------------

    def step(self, now: float) -> list[RebalanceEvent]:
        """Run one control decision at virtual time ``now``."""
        self.steps += 1
        loads = self._loads()
        if self._telemetry is not None:
            for shard in loads:
                series = self._load_series.get(shard)
                if series is None:
                    series = self._load_series[shard] = \
                        self._telemetry.timeseries(f"shard.load.{shard}")
                series.sample(now, float(loads[shard]))
        total = sum(loads.values())
        if not loads or total < self.min_window:
            return []
        mean = total / len(loads)
        fired: list[RebalanceEvent] = []

        if len(loads) < self.max_shards:
            hot = self._pick(sorted(loads), loads, max)
            if loads[hot] > self.hot_factor * mean \
                    and self.router.directory.can_split(hot):
                before = self.router.migrated
                child = self.router.split_shard(hot)
                fired.append(RebalanceEvent(
                    at=now, action="split", shard=hot, peer=child,
                    load=loads[hot], mean_load=mean,
                    moved=self.router.migrated - before))

        survivors = sorted(set(loads) - {event.shard for event in fired})
        if len(self.router.gateways) > self.min_shards and len(survivors) > 1:
            cold = self._pick(survivors, loads, min)
            if loads[cold] < self.cold_factor * mean:
                target = self._pick(
                    sorted(set(survivors) - {cold}), loads, min)
                moved = self.router.merge_shard(cold, target)
                fired.append(RebalanceEvent(
                    at=now, action="merge", shard=cold, peer=target,
                    load=loads[cold], mean_load=mean, moved=moved))

        self.events.extend(fired)
        if self._telemetry is not None:
            for event in fired:
                self._telemetry.event(
                    now, f"rebalance.{event.action}", category="rebalance",
                    shard=event.shard, peer=event.peer, load=event.load,
                    moved=event.moved)
        return fired

    # -- views -------------------------------------------------------------

    def history(self) -> list[dict]:
        """The decision log as JSON-ready rows (stable keys)."""
        return [{
            "at": round(event.at, 9),
            "action": event.action,
            "shard": event.shard,
            "peer": event.peer,
            "load": event.load,
            "mean_load": round(event.mean_load, 9),
            "moved": event.moved,
        } for event in self.events]
