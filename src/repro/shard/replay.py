"""Deterministic million-tenant trace replay over the sharded fabric.

The full discrete-event kernel prices every arrival at a heap push plus
a process step — fine for thousands of queries, hopeless for millions.
The replay keeps the *admission* path fully real (router, route cache,
epoch fences, gateway queues, shed decisions, rebalancer, failures) and
replaces only query *execution* with an analytic slot model: each shard
is ``slots`` parallel servers; a heap of slot-free times is drained as
the trace clock advances, and each dispatch's completion time is known
in closed form. Everything runs on a :class:`ManualClock`, so the whole
run is a single pass over the trace — O(events) work, O(active) memory.

Two instruments make the complexity claims checkable rather than
asserted:

* :class:`ScanGuard` wraps every gateway's tenant-keyed dicts and
  counts *full iterations* (``keys``/``values``/``items``/``iter``).
  The replay reports ``full_scans``; the bench gate pins it to zero —
  the per-event cost provably never walks a tenant-sized structure.
* The result digest is :func:`~repro.telemetry.canonical_json` hashed
  over the fleet roll-up, the rebalance history, and every counter —
  two same-seed runs must be byte-identical.
"""

from __future__ import annotations

import hashlib
import heapq
from dataclasses import dataclass, field

from repro.serve.gateway import QueryGateway, Tenant
from repro.serve.metrics import CompletedQuery
from repro.shard.metrics import ShardMetrics
from repro.shard.rebalance import Rebalancer
from repro.shard.router import ShardRouter
from repro.sim.rng import RandomStreams
from repro.telemetry import canonical_json
from repro.workloads.traffic import zipf_trace

#: Cost model of one served query: the paper's Lambda price point
#: (USD per GB-second) at 2 GB, applied to analytic service time.
_USD_PER_SLOT_SECOND = 2.0 * 0.0000166667


class ManualClock:
    """A bare virtual clock: the only ``env`` surface the replay needs.

    Gateways read ``env.now`` for timestamps; nothing here schedules —
    the replay advances ``now`` itself, one trace arrival at a time.
    """

    __slots__ = ("now",)

    def __init__(self) -> None:
        self.now = 0.0


class ScanGuard(dict):
    """A dict that counts full iterations over itself.

    Keyed lookups (``get``/``[]``/``in``/``len``) stay free; anything
    that walks the whole mapping bumps :attr:`full_scans`. Wrapped
    around tenant-keyed gateway state, a zero count after a
    million-event replay is a *proof* the hot path is O(1) in tenant
    count — not a benchmark that happens to be fast.
    """

    def __init__(self, *args, **kwargs) -> None:
        super().__init__(*args, **kwargs)
        self.full_scans = 0

    def __iter__(self):
        self.full_scans += 1
        return super().__iter__()

    def keys(self):
        self.full_scans += 1
        return super().keys()

    def values(self):
        self.full_scans += 1
        return super().values()

    def items(self):
        self.full_scans += 1
        return super().items()

    def copy(self):
        """Counted: copying *is* a full scan — exactly once.

        Whether ``dict.copy`` on a subclass dispatches through the
        Python-level ``keys()`` override is a CPython implementation
        detail: overriding ``__iter__`` changes ``tp_iter``, which
        defeats ``PyDict_Merge``'s exact-dict fast path and sends the
        walk through ``keys()`` (counted) on current CPython — but
        that is nowhere contracted. Bumping only when the parent copy
        did not already count keeps ``sg.copy()`` at exactly one scan
        on any dispatch behavior. Walks that read the key table
        directly at the C level (``repr``, ``==``) remain invisible —
        the regression test pins the current census of both groups.
        """
        before = self.full_scans
        data = super().copy()
        self.full_scans = before + 1
        return data


@dataclass(frozen=True)
class ReplayConfig:
    """One sharded-serving replay, fully determined by its fields."""

    tenants: int = 1_000_000
    events: int = 1_500_000
    window_s: float = 3_600.0
    seed: int = 7
    shards: int = 4
    slots_per_shard: int = 16
    max_pending_per_shard: int = 4_096
    tenant_queue_depth: int = 32
    zipf_s: float = 1.3
    mean_service_s: float = 0.2
    slo_latency_s: float = 2.0
    control_interval_s: float = 60.0
    hot_factor: float = 1.15
    cold_factor: float = 0.55
    max_shards: int = 12
    #: Virtual times at which a shard failure is injected (the
    #: currently most-backlogged shard dies; its queue must be
    #: recovered, not lost).
    fail_at: tuple = ()
    #: Optional :mod:`repro.chaos` plan name; its ``shard_failure``
    #: specs are polled per live shard at every control tick.
    fault_plan: str = ""

    def smoke(self) -> "ReplayConfig":
        """The CI-sized variant: >=100k tenants, truncated trace."""
        return ReplayConfig(
            tenants=120_000, events=180_000, window_s=600.0,
            seed=self.seed, shards=self.shards,
            slots_per_shard=self.slots_per_shard,
            max_pending_per_shard=self.max_pending_per_shard,
            tenant_queue_depth=self.tenant_queue_depth,
            zipf_s=self.zipf_s, mean_service_s=self.mean_service_s,
            slo_latency_s=self.slo_latency_s,
            control_interval_s=60.0, hot_factor=self.hot_factor,
            cold_factor=self.cold_factor, max_shards=self.max_shards,
            fail_at=(150.0,), fault_plan="shard-failure")


@dataclass
class ReplayResult:
    """The replay's outcome: the roll-up, the history, the proof bits.

    ``extra`` carries non-deterministic annotations (wall times, RSS);
    it is deliberately excluded from :meth:`to_dict` and the digest.
    """

    report: dict
    rebalances: list[dict]
    distinct_tenants: int
    events: int
    shards_final: int
    submits: int
    stale_retries: int
    migrated: int
    recovered: int
    full_scans: int
    failures_injected: int
    extra: dict = field(default_factory=dict)

    def to_dict(self) -> dict:
        return {
            "report": self.report,
            "rebalances": self.rebalances,
            "distinct_tenants": self.distinct_tenants,
            "events": self.events,
            "shards_final": self.shards_final,
            "submits": self.submits,
            "stale_retries": self.stale_retries,
            "migrated": self.migrated,
            "recovered": self.recovered,
            "full_scans": self.full_scans,
            "failures_injected": self.failures_injected,
        }

    def digest(self) -> str:
        """SHA-256 over the canonical JSON of the full outcome."""
        return hashlib.sha256(
            canonical_json(self.to_dict()).encode("utf-8")).hexdigest()


class _SlotBank:
    """Analytic execution model of one shard: ``slots`` parallel servers."""

    __slots__ = ("slots", "busy")

    def __init__(self, slots: int) -> None:
        self.slots = slots
        self.busy: list[float] = []  # heap of slot-free times


def _next_request(gateway: QueryGateway):
    """Pop the next request: round-robin across backlogged tenants.

    FIFO within a tenant; tenants take turns in first-backlogged
    order. O(1) per call — one dict-head read, one deque pop, and a
    constant-cost rotation of the backlog index.
    """
    backlog = gateway._backlog
    if not backlog:
        return None
    name = next(iter(backlog))
    request = gateway.pop(name)
    if name in backlog:  # still backlogged: rotate to the back
        del backlog[name]
        backlog[name] = None
    return request


# Knuth's multiplicative hash constant, for the observer interest
# filter's deterministic request-id slice (shared spec with
# ``repro.obs.sampler.baseline_keep`` — kept as a literal so the shard
# layer stays import-free of obs).
_SAMPLE_HASH_MULT = 2654435761

#: Sentinel slow-threshold: every latency compares >= -inf, so an
#: observer without an interest spec sees every completion.
_ALWAYS = float("-inf")


def _complete(metrics, request, start: float, shard: str = "",
              on_completion=None, slow_s: float = _ALWAYS,
              salt: int = 0, cut: int = 0) -> float:
    finish = start + request.plan
    metrics.record_completion(CompletedQuery(
        tenant=request.tenant, query_id=f"q{request.seq}",
        submitted_at=request.submitted_at, started_at=start,
        finished_at=finish, runtime=request.plan,
        cost_usd=request.plan * _USD_PER_SLOT_SECOND,
        retries=0, hedges=0))
    if on_completion is not None:
        # Interest pre-filter (see run_replay): three scalar checks in
        # place of a Python call per served request. With the default
        # sentinel bounds every completion passes.
        if (finish - request.submitted_at >= slow_s or request.rescued
                or ((request.seq * _SAMPLE_HASH_MULT + salt)
                    & 0xFFFFFFFF) < cut):
            on_completion(finish, shard, request)
    return finish


def _advance(bank: _SlotBank, gateway: QueryGateway, now: float,
             on_completion=None, slow_s: float = _ALWAYS,
             salt: int = 0, cut: int = 0) -> None:
    """Drain one shard's slots up to virtual time ``now``.

    ``on_completion`` is the observer's pre-bound completion hook (not
    the observer itself) and ``slow_s``/``salt``/``cut`` its unpacked
    interest spec: both are hoisted out of the loop at the call sites
    because this is the replay's per-event hot path.
    """
    busy = bank.busy
    shard = gateway.shard_id
    metrics = gateway.metrics
    while busy and busy[0] <= now:
        freed = heapq.heappop(busy)
        request = _next_request(gateway)
        if request is None:
            continue
        start = freed if freed >= request.submitted_at \
            else request.submitted_at
        heapq.heappush(busy, _complete(metrics, request, start, shard,
                                       on_completion, slow_s, salt, cut))
    while len(busy) < bank.slots:
        request = _next_request(gateway)
        if request is None:
            break
        heapq.heappush(busy, _complete(metrics, request, now, shard,
                                       on_completion, slow_s, salt, cut))


def _drain_all(banks: dict, gateways: dict, upto: float,
               on_completion=None, slow_s: float = _ALWAYS,
               salt: int = 0, cut: int = 0) -> None:
    for shard in sorted(banks):
        if shard in gateways:
            _advance(banks[shard], gateways[shard], upto,
                     on_completion, slow_s, salt, cut)


def _quiesce(bank: _SlotBank, gateway: QueryGateway, horizon: float,
             step: float, on_completion=None, slow_s: float = _ALWAYS,
             salt: int = 0, cut: int = 0) -> None:
    """Drain one shard past its last completion (end of trace)."""
    while bank.busy or gateway.total_pending:
        if bank.busy:
            horizon = max(horizon, bank.busy[0])
        _advance(bank, gateway, horizon, on_completion, slow_s, salt, cut)
        horizon += step


def _distinct(ids) -> int:
    """Distinct tenant ids in the trace, without a million-entry set."""
    if len(ids) == 0:
        return 0
    ordered = ids.copy()
    ordered.sort()
    return 1 + int((ordered[1:] != ordered[:-1]).sum())


def run_replay(config: ReplayConfig, observer=None) -> ReplayResult:
    """Replay a Zipf trace through the sharded fabric, deterministically.

    One pass over the trace: at each arrival the routed shard's slot
    bank is advanced to the arrival time, the query is offered through
    the router (cache, epoch fence, shed bound), and idle slots pull
    from the queues. Every ``control_interval_s`` the rebalancer takes
    a load window and may split/merge; configured shard failures fire
    at the control cadence too. After the last arrival all shards are
    drained to quiescence, and the fleet roll-up is reconciled.

    ``observer`` is an optional observability plane (duck-typed; see
    :class:`repro.obs.plane.ReplayObsPlane`): ``on_completion`` fires
    per served request, ``on_shard_failure`` when a shard dies,
    ``on_fault`` per injected chaos fault, ``on_control_tick`` after
    each control interval's drain/rebalance, and ``on_end`` after
    quiescence. Observation is strictly outcome-neutral — the returned
    result (and its digest) is byte-identical with or without one.

    An observer that only needs a *subset* of completions may expose a
    ``completion_interest = (slow_threshold_s, salt, cut)`` attribute:
    the replay then pre-filters the firehose inline — a completion is
    delivered iff its latency is ``>= slow_threshold_s``, the request
    was rescued from a failed shard, or the Knuth hash of its request
    id (salted with ``salt``, both ints) falls under ``cut`` (an
    integer threshold out of 2^32). Three scalar checks replace a
    Python call per served request; observers that expose it must
    reconstruct totals from the shard counters (they are scraped at
    every control tick anyway).
    """
    streams = RandomStreams(config.seed)
    times, ids = zipf_trace(
        streams.stream("shard.trace"), config.tenants, config.events,
        config.window_s, s=config.zipf_s)
    services = streams.stream("shard.service").exponential(
        config.mean_service_s, size=config.events)

    clock = ManualClock()
    guards: list[ScanGuard] = []

    def factory(env, **kwargs) -> QueryGateway:
        gateway = QueryGateway(env, **kwargs)
        gateway.queues = ScanGuard(gateway.queues)
        gateway.tenants = ScanGuard(gateway.tenants)
        guards.append(gateway.queues)
        guards.append(gateway.tenants)
        return gateway

    template = Tenant(name="__default__",
                      max_queue_depth=config.tenant_queue_depth,
                      slo_latency_s=config.slo_latency_s)
    router = ShardRouter(
        clock, shards=config.shards,
        max_pending=config.max_pending_per_shard,
        default_tenant=template, slo_latency_s=config.slo_latency_s,
        gateway_factory=factory)
    rebalancer = Rebalancer(
        router, seed=config.seed, hot_factor=config.hot_factor,
        cold_factor=config.cold_factor, min_shards=1,
        max_shards=config.max_shards)
    banks: dict[str, _SlotBank] = {}
    for shard in router.shards():
        banks[shard] = _SlotBank(config.slots_per_shard)

    pending_failures = sorted(config.fail_at)
    failures = 0
    # Pre-bind the per-completion hook and unpack its interest spec:
    # the hook fires once per served request, the other observer hooks
    # only at control cadence.
    on_completion = observer.on_completion if observer is not None else None
    slow_s, salt, cut = _ALWAYS, 0, 0
    if observer is not None:
        interest = getattr(observer, "completion_interest", None)
        if interest is not None:
            slow_s, salt, cut = interest
    injector = None
    if config.fault_plan:
        from repro.chaos.injector import FaultInjector
        from repro.chaos.plan import get_plan
        injector = FaultInjector(get_plan(config.fault_plan),
                                 RandomStreams(config.seed))
        if observer is not None:
            injector.observer = observer

    def kill(victim: str) -> None:
        nonlocal failures
        orphans = router.fail_shard(victim)
        banks.pop(victim)
        failures += 1
        if observer is not None:
            observer.on_shard_failure(clock.now, victim, orphans)

    next_control = config.control_interval_s

    for index in range(config.events):
        now = float(times[index])
        while now >= next_control:
            clock.now = next_control
            # Failures fire on the un-drained state: whatever is still
            # queued on the victim at the instant it dies is exactly
            # the work that must be recovered, not completed.
            while pending_failures and pending_failures[0] <= next_control:
                pending_failures.pop(0)
                if len(router.gateways) > 1:
                    depth = {shard: router.gateways[shard].total_pending
                             for shard in sorted(router.gateways)}
                    victim = max(sorted(depth), key=lambda s: depth[s])
                    kill(victim)
            if injector is not None:
                for shard in router.shards():
                    if len(router.gateways) > 1 \
                            and injector.on_shard(shard, next_control):
                        kill(shard)
            _drain_all(banks, router.gateways, next_control,
                       on_completion, slow_s, salt, cut)
            for event in rebalancer.step(next_control):
                if event.action == "split":
                    banks[event.peer] = _SlotBank(config.slots_per_shard)
                elif event.action == "merge":
                    banks.pop(event.shard)
            if observer is not None:
                observer.on_control_tick(next_control, router)
            next_control += config.control_interval_s
        clock.now = now
        tenant = f"t{ids[index]}"
        shard = router.route(tenant).shard
        _advance(banks[shard], router.gateways[shard], now,
                 on_completion, slow_s, salt, cut)
        request = router.submit(tenant, float(services[index]))
        if request is not None:
            # A stale-epoch retry may have re-routed the tenant: the
            # cache is fresh after submit, so re-read the shard.
            shard = router.route(tenant).shard
            _advance(banks[shard], router.gateways[shard], now,
                     on_completion, slow_s, salt, cut)

    clock.now = config.window_s
    for shard in sorted(banks):
        _quiesce(banks[shard], router.gateways[shard], config.window_s,
                 config.mean_service_s, on_completion, slow_s, salt, cut)
    if observer is not None:
        observer.on_end(config.window_s, router)

    report = router.roll_up()
    return ReplayResult(
        report=report.to_dict(),
        rebalances=rebalancer.history(),
        distinct_tenants=_distinct(ids),
        events=config.events,
        shards_final=len(router.gateways),
        submits=router.submits,
        stale_retries=router.stale_retries,
        migrated=router.migrated,
        recovered=router.fleet.recovered_requests,
        full_scans=sum(guard.full_scans for guard in guards),
        failures_injected=failures)


def run_unsharded_replay(config: ReplayConfig) -> dict:
    """The same trace through one monolithic gateway (the baseline).

    Equal aggregate capacity (``shards * slots_per_shard`` slots, the
    summed pending bound), no router, no rebalancing — the comparison
    point BENCH_PR7 records events/sec and peak memory against.
    """
    streams = RandomStreams(config.seed)
    times, ids = zipf_trace(
        streams.stream("shard.trace"), config.tenants, config.events,
        config.window_s, s=config.zipf_s)
    services = streams.stream("shard.service").exponential(
        config.mean_service_s, size=config.events)

    clock = ManualClock()
    template = Tenant(name="__default__",
                      max_queue_depth=config.tenant_queue_depth,
                      slo_latency_s=config.slo_latency_s)
    metrics = ShardMetrics(shard_id="mono",
                           slo_latency_s=config.slo_latency_s)
    gateway = QueryGateway(
        clock, metrics=metrics,
        max_pending=config.max_pending_per_shard * config.shards,
        shard_id="mono", default_tenant=template)
    bank = _SlotBank(config.slots_per_shard * config.shards)

    for index in range(config.events):
        now = float(times[index])
        clock.now = now
        _advance(bank, gateway, now)
        gateway.submit(f"t{ids[index]}", float(services[index]))
        _advance(bank, gateway, now)

    clock.now = config.window_s
    _quiesce(bank, gateway, config.window_s, config.mean_service_s)

    return {
        "offered": metrics.offered,
        "completed": metrics.completed,
        "shed": metrics.shed,
        "p50": metrics.latency.percentile(50.0),
        "p99": metrics.latency.percentile(99.0),
        "cost_usd": round(metrics.cost_usd, 9),
    }
