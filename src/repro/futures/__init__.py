"""A Lithops-style futures/map-reduce programming API over the platform.

This package is the second workload family of the repro (ROADMAP item
2): instead of SQL fragments driven by ``repro.engine``, user-supplied
Python functions fan out over the simulated Lambda platform through a
:class:`~repro.futures.executor.FunctionExecutor`::

    executor = FunctionExecutor(env, platform, rng)
    futures = executor.map(fn, partition_prefix(s3, "corpus/",
                                                chunk_bytes=1024))
    done, pending = yield from executor.wait(futures, when=ANY_COMPLETED)

The pieces, mirroring lithops' architecture on the virtual clock:

* :class:`~repro.futures.future.ResponseFuture` — per-call state
  machine (pending → running → success/error) with result and cost
  accessors;
* :class:`~repro.futures.monitor.JobMonitor` — per-job invocation-state
  tracking and (opt-in) time-series polling;
* :class:`~repro.futures.partitioner.DataChunk` /
  :func:`~repro.futures.partitioner.partition_prefix` — byte-range and
  object-granularity splitting of storage prefixes into mapper inputs;
* :class:`~repro.futures.invoker.Invoker` — bounded in-flight dispatch
  with seeded retries and optional speculative re-invocation;
* :mod:`~repro.futures.workloads` — deterministic end-to-end scenarios
  (map-reduce wordcount, parallel parameter sweep).
"""

from repro.futures.executor import (
    ALL_COMPLETED,
    ALWAYS,
    ANY_COMPLETED,
    AdmissionShed,
    ExecutorConfig,
    FunctionExecutor,
)
from repro.futures.future import AttemptRecord, ResponseFuture
from repro.futures.invoker import Invoker, InvokerConfig
from repro.futures.monitor import JobMonitor
from repro.futures.partitioner import (
    DataChunk,
    partition_object,
    partition_prefix,
)

__all__ = [
    "ALL_COMPLETED",
    "ALWAYS",
    "ANY_COMPLETED",
    "AdmissionShed",
    "AttemptRecord",
    "DataChunk",
    "ExecutorConfig",
    "FunctionExecutor",
    "Invoker",
    "InvokerConfig",
    "JobMonitor",
    "ResponseFuture",
    "partition_object",
    "partition_prefix",
]
