"""The invoker: bounded, fault-tolerant dispatch of futures calls.

The executor hands every :class:`~repro.futures.future.ResponseFuture`
to one shared :class:`Invoker`, which drives it to a terminal state:

* **bounded in-flight concurrency** — a :class:`~repro.sim.resources.
  Resource` of ``max_inflight`` slots queues dispatches FIFO, so a
  50 000-call ``map`` cannot stampede the platform's admission layer;
* **seeded-deterministic retries** — attempts run *supervised* (errors
  captured, never propagated raw into the kernel) and transient failures
  (``error.retryable``) are retried with jittered exponential backoff
  drawn from a named RNG stream, under a per-executor retry budget;
* **speculative re-invocation** — an opt-in straggler poller requests a
  duplicate attempt for calls running far beyond the completed median,
  the Lambada/Starling recipe the query coordinator also uses. Losing
  duplicates become *zombies*: they run (and bill) to completion and are
  drained by ``executor.drain()``.

Every platform invocation — primary, retry, or duplicate — bills an
:class:`~repro.futures.future.AttemptRecord` onto its future, so the sum
of per-future costs reproduces the pricing-catalog total.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.futures.future import AttemptRecord, ResponseFuture, attempt_cost_usd
from repro.sim import AnyOf, Resource
from repro.telemetry import get_recorder

#: Per-call dispatch overhead on the coordinating process (seconds) —
#: same serialization cost the query coordinator pays per fragment.
INVOKE_DISPATCH_S = 0.003


@dataclass(frozen=True)
class InvokerConfig:
    """Dispatch, retry, and speculation knobs of one executor."""

    #: Calls allowed in flight at once; further dispatches queue FIFO.
    max_inflight: int = 64
    #: Total tries per call (1 = no retries).
    max_attempts: int = 3
    #: Retries allowed across the whole executor.
    retry_budget: int = 128
    backoff_base_s: float = 0.1
    backoff_multiplier: float = 2.0
    backoff_cap_s: float = 5.0
    #: Uniform jitter fraction applied to each backoff delay.
    backoff_jitter: float = 0.5
    #: Speculative re-invocation of stragglers. Off by default — it
    #: reacts to natural timing variance too, perturbing clean runs.
    speculate: bool = False
    #: A call is duplicated once it runs ``spec_factor`` x the median
    #: elapsed time of completed calls in its job.
    spec_factor: float = 3.0
    #: Fraction of the job that must be done before speculating.
    spec_quorum: float = 0.5
    #: Speculative launches allowed across the whole executor.
    spec_budget: int = 4
    #: Never duplicate a call that has run less than this.
    spec_min_wait_s: float = 0.5
    #: Straggler-scan interval while a job is in flight.
    spec_poll_s: float = 0.25

    def __post_init__(self) -> None:
        if self.max_inflight <= 0:
            raise ValueError(
                f"max_inflight must be positive, got {self.max_inflight}")
        if self.max_attempts <= 0:
            raise ValueError(
                f"max_attempts must be positive, got {self.max_attempts}")


class Invoker:
    """Drives futures through the platform with retries and speculation."""

    def __init__(self, env, platform, function, config: InvokerConfig,
                 jitter_rng) -> None:
        self.env = env
        self.platform = platform
        #: The deployed :class:`~repro.faas.function.FunctionConfig`;
        #: its memory/ephemeral sizing prices every attempt.
        self.function = function
        self.config = config
        self._jitter = jitter_rng
        self._slots = Resource(env, capacity=config.max_inflight)
        self.retries = 0
        self.failed_attempts = 0
        self.speculations = 0
        self.spec_wins = 0
        self.inflight_peak = 0
        #: Abandoned duplicate attempts still running; they bill to
        #: completion and are awaited by :meth:`drain`.
        self.zombies: list = []
        self.zombies_drained = 0

    @property
    def inflight(self) -> int:
        """Calls currently holding a dispatch slot."""
        return self._slots.count

    def summary(self) -> dict:
        """JSON-ready dispatch statistics."""
        return {
            "retries": self.retries,
            "failed_attempts": self.failed_attempts,
            "speculations": self.speculations,
            "spec_wins": self.spec_wins,
            "zombies_drained": self.zombies_drained,
            "inflight_peak": self.inflight_peak,
        }

    # -- dispatch --------------------------------------------------------------

    def submit(self, future: ResponseFuture, fn, parent=None):
        """Start driving ``future``; returns the drive process."""
        return self.env.process(self._drive(future, fn, parent),
                                name=f"drive-{future.call_id}")

    def _drive(self, future: ResponseFuture, fn, parent):
        """Process: take a slot, dispatch, and retry/speculate to done."""
        cfg = self.config
        with self._slots.request() as slot:
            yield slot
            self.inflight_peak = max(self.inflight_peak, self._slots.count)
            yield self.env.timeout(INVOKE_DISPATCH_S)
            future.mark_running(self.env.now)
            recorder = get_recorder()
            span = None
            if recorder.enabled:
                span = recorder.start_span(
                    f"dispatch {future.call_id}", self.env.now, parent=parent,
                    category="futures", attrs={"call_id": future.call_id})
            #: (process, attempt_no, is_duplicate) of live attempts.
            active = [(self._launch(future, fn, 0, False, span, 0.0), 0,
                       False)]
            attempts = 1
            while not future.done:
                future._wake = wake = self.env.event()
                yield AnyOf(self.env,
                            [process for process, _, _ in active] + [wake])
                if future._spec_requested:
                    future._spec_requested = False
                    if not future.hedged \
                            and self.speculations < cfg.spec_budget:
                        future.hedged = True
                        self.speculations += 1
                        self._note("futures.speculate", future,
                                   attempt=attempts)
                        active.append((
                            self._launch(future, fn, attempts, True, span,
                                         0.0),
                            attempts, True))
                        attempts += 1
                finished = [entry for entry in active if entry[0].processed]
                if not finished:
                    continue
                active = [entry for entry in active
                          if not entry[0].processed]
                for process, attempt_no, is_duplicate in finished:
                    ok, value = process.value
                    if future.done:
                        continue  # late sibling; already billed, ignored
                    if ok:
                        if is_duplicate:
                            self.spec_wins += 1
                            self._note("futures.speculate_win", future,
                                       attempt=attempt_no)
                        # Siblings still in flight become zombies: they
                        # run (and bill) unobserved until drain().
                        self.zombies.extend(
                            entry[0] for entry in active)
                        active = []
                        future.resolve(value)
                    elif self._retryable(value, attempts):
                        self.failed_attempts += 1
                        self.retries += 1
                        delay = self._backoff_delay(attempts)
                        self._note("futures.retry", future, attempt=attempts,
                                   backoff_s=delay,
                                   cause=type(value).__name__)
                        active.append((
                            self._launch(future, fn, attempts, False, span,
                                         delay),
                            attempts, False))
                        attempts += 1
                    else:
                        self.failed_attempts += 1
                        if not active:
                            future.reject(value)
            if span is not None:
                span.finish(self.env.now, state=future.state,
                            attempts=len(future.attempts))
            return future

    def _retryable(self, error: BaseException, attempts: int) -> bool:
        cfg = self.config
        return (getattr(error, "retryable", False)
                and attempts < cfg.max_attempts
                and self.retries < cfg.retry_budget)

    def _backoff_delay(self, attempt: int) -> float:
        """Jittered exponential backoff before retry number ``attempt``."""
        cfg = self.config
        delay = min(cfg.backoff_cap_s,
                    cfg.backoff_base_s
                    * cfg.backoff_multiplier ** (attempt - 1))
        if cfg.backoff_jitter > 0:
            delay *= 1.0 + cfg.backoff_jitter * (
                2.0 * float(self._jitter.random()) - 1.0)
        return delay

    def _note(self, name: str, future: ResponseFuture, **attrs) -> None:
        recorder = get_recorder()
        if recorder.enabled:
            recorder.event(self.env.now, name, category="futures",
                           job=future.job_id, call_id=future.call_id,
                           **attrs)

    # -- one supervised attempt ------------------------------------------------

    def _launch(self, future: ResponseFuture, fn, attempt: int,
                hedged: bool, span, delay: float):
        payload = {
            "fn": fn,
            "data": future.data,
            "job_id": future.job_id,
            "call_id": future.call_id,
            "attempt": attempt,
            "hedged": hedged,
        }
        if span is not None:
            payload["trace"] = span
        return self.env.process(self._attempt(future, payload, delay),
                                name=f"attempt-{future.call_id}-{attempt}")

    def _attempt(self, future: ResponseFuture, payload: dict, delay: float):
        """Process: back off, invoke once, bill the attempt, never fail.

        Returns ``(True, response)`` or ``(False, error)`` — platform
        and handler errors alike are captured into the result, so
        concurrent attempts cannot crash the kernel with an unwatched
        failure.
        """
        if delay > 0:
            yield self.env.timeout(delay)
        try:
            record = yield from self.platform.invoke_async(
                self.function.name, payload)
        except BaseException as exc:  # noqa: BLE001 - captured for the driver
            return (False, exc)
        future.attempts.append(AttemptRecord(
            attempt=payload["attempt"], hedged=payload["hedged"],
            requested_at=record.requested_at, started_at=record.started_at,
            finished_at=record.finished_at, cold=record.cold,
            ok=record.error is None,
            error_type=(type(record.error).__name__
                        if record.error is not None else None),
            cost_usd=attempt_cost_usd(record, self.function.memory_bytes,
                                      self.function.ephemeral_bytes)))
        if record.error is not None:
            return (False, record.error)
        return (True, record.response)

    # -- speculation -----------------------------------------------------------

    def speculate(self, futures: list):
        """Process: scan a job for stragglers, requesting duplicates.

        Once a quorum of the job has completed, any call running
        ``spec_factor`` x the completed median (and at least
        ``spec_min_wait_s``) gets a duplicate request, delivered to its
        drive loop through the future's wake event. Ends when the job
        (or the speculation budget) is exhausted.
        """
        cfg = self.config
        while True:
            open_calls = [f for f in futures if not f.done]
            if not open_calls or self.speculations >= cfg.spec_budget:
                return
            done = [f for f in futures
                    if f.done and f.dispatched_at is not None]
            if len(done) >= cfg.spec_quorum * len(futures) and done:
                durations = sorted(f.finished_at - f.dispatched_at
                                   for f in done)
                median = durations[len(durations) // 2]
                threshold = max(cfg.spec_min_wait_s,
                                cfg.spec_factor * median)
                for future in open_calls:
                    if future.hedged or future._spec_requested \
                            or future.dispatched_at is None:
                        continue
                    if self.env.now - future.dispatched_at >= threshold:
                        future._spec_requested = True
                        if future._wake is not None \
                                and not future._wake.triggered:
                            future._wake.succeed()
            yield self.env.timeout(cfg.spec_poll_s)

    # -- zombie draining -------------------------------------------------------

    def drain(self):
        """Process: await every abandoned duplicate still in flight.

        Run this before reading platform-level cost totals — zombies
        bill on completion, and a cost audit taken while one is running
        would be short.
        """
        while self.zombies:
            zombie = self.zombies.pop(0)
            yield zombie
            self.zombies_drained += 1
        return self.zombies_drained
