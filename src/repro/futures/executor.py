"""The FunctionExecutor: Lithops-style futures API over the platform.

The executor is the entry point of the subsystem::

    executor = FunctionExecutor(env, platform, rng)

    def scenario(env):
        futures = executor.map(word_count, chunks)
        done, pending = yield from executor.wait(futures, when=ANY_COMPLETED)
        reduce_future = executor.map_reduce(word_count, chunks, merge_counts)
        result = yield from executor.get_result(reduce_future)

Every ``call_async`` / ``map`` / ``map_reduce`` creates a *job*: a batch
of :class:`~repro.futures.future.ResponseFuture` objects sharing one
:class:`~repro.futures.monitor.JobMonitor` and one telemetry trace, so
spans nest job → dispatch → invoke → fn in ``repro trace`` output. A
single shared :class:`~repro.futures.invoker.Invoker` drives all jobs,
which is what makes ``max_inflight`` an executor-wide bound rather than
a per-job one.

The executor deploys one worker function and ships the user's ``fn``
inside the payload — the simulation analogue of lithops' generic runtime
worker that unpickles and runs the shipped callable. ``fn(context,
data)`` may be a plain callable or a generator (yielding simulation
events for storage I/O and compute time).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Optional

from repro import units
from repro.faas.function import FunctionConfig
from repro.futures.future import ResponseFuture
from repro.futures.invoker import Invoker, InvokerConfig
from repro.futures.monitor import JobMonitor
from repro.pricing.calculator import CostCalculator
from repro.sim import AllOf, AnyOf
from repro.telemetry import get_recorder

#: ``wait()`` return conditions (the lithops names).
ANY_COMPLETED = "ANY_COMPLETED"
ALL_COMPLETED = "ALL_COMPLETED"
ALWAYS = "ALWAYS"

_WAIT_CONDITIONS = (ANY_COMPLETED, ALL_COMPLETED, ALWAYS)


@dataclass(frozen=True)
class ExecutorConfig:
    """Sizing and dispatch configuration of one executor."""

    #: Name the worker function is deployed under.
    function_name: str = "futures-worker"
    memory_bytes: float = 1_769 * units.MiB
    binary_bytes: float = 8 * units.MiB
    ephemeral_bytes: float = 512 * units.MiB
    invoker: InvokerConfig = field(default_factory=InvokerConfig)
    #: Poll interval of the per-job monitor process (samples pending/
    #: running time series). ``None`` — the default — runs no poller,
    #: keeping the executor free of background events.
    monitor_poll_s: Optional[float] = None


class Job:
    """One batch of futures sharing a monitor and a trace."""

    def __init__(self, job_id: str, kind: str, monitor: JobMonitor) -> None:
        self.job_id = job_id
        self.kind = kind
        self.monitor = monitor
        self.futures: list[ResponseFuture] = []


def worker_handler(context, payload):
    """The generic worker: run the shipped ``fn`` over its data chunk.

    ``fn(context, data)`` may return a value directly or a generator to
    be driven as part of this handler (for storage I/O and compute
    time). Errors propagate to the platform, which records them on the
    invocation record for the invoker's retry logic.
    """
    recorder = get_recorder()
    span = None
    if recorder.enabled:
        span = recorder.start_span(
            f"fn {payload['call_id']}", context.env.now,
            parent=context.trace_ctx, category="futures",
            attrs={"call_id": payload["call_id"],
                   "attempt": payload["attempt"]})
    try:
        value = payload["fn"](context, payload["data"])
        if hasattr(value, "send") and hasattr(value, "throw"):
            value = yield from value
    except BaseException:
        if span is not None:
            span.finish(context.env.now, ok=False)
        raise
    if span is not None:
        span.finish(context.env.now, ok=True)
    return value


class AdmissionShed(Exception):
    """A call was shed by serving-fleet admission before dispatch.

    Raised through the rejected future when the executor is bound to a
    shard router and the tenant's shard is over its pending bound. Not
    retryable by the invoker — shedding is a deliberate admission
    decision, not a transient infrastructure fault.
    """

    retryable = False


class FunctionExecutor:
    """Submits function calls over the platform and tracks their futures.

    When ``router`` and ``tenant`` are given, every call is admitted
    through the sharded serving fabric first: it counts against the
    tenant's shard (the same per-shard pending bound queries obey) and
    holds that slot until the future completes. Calls the shard sheds
    are rejected with :class:`AdmissionShed` without ever reaching the
    invoker. The router is duck-typed — anything with
    ``offer_external(tenant) -> Optional[release]`` works — so the
    futures layer stays independent of :mod:`repro.shard`.
    """

    def __init__(self, env, platform, rng,
                 config: Optional[ExecutorConfig] = None,
                 router=None, tenant: Optional[str] = None) -> None:
        self.env = env
        self.platform = platform
        self.router = router
        self.tenant = tenant
        self.shed_calls = 0
        self.config = config or ExecutorConfig()
        self.function = FunctionConfig(
            name=self.config.function_name, handler=worker_handler,
            memory_bytes=self.config.memory_bytes,
            binary_bytes=self.config.binary_bytes,
            ephemeral_bytes=self.config.ephemeral_bytes)
        platform.deploy(self.function)
        self.invoker = Invoker(env, platform, self.function,
                               self.config.invoker,
                               rng.stream("futures.backoff"))
        self.jobs: list[Job] = []

    # -- submission ------------------------------------------------------------

    def call_async(self, fn, data: Any) -> ResponseFuture:
        """Submit one asynchronous call; returns its future immediately."""
        job = self._new_job("call")
        return self._submit(job, fn, data)

    def map(self, fn, iterable) -> list[ResponseFuture]:
        """Fan ``fn`` out over ``iterable``; one future per item.

        Futures are created in iteration order and dispatched FIFO
        through the invoker's in-flight bound; an empty iterable yields
        an empty list (and no job).
        """
        items = list(iterable)
        if not items:
            return []
        job = self._new_job("map")
        futures = [self._submit(job, fn, item) for item in items]
        self._maybe_speculate(job, futures)
        return futures

    def map_reduce(self, map_fn, iterable, reduce_fn) -> ResponseFuture:
        """Map, then reduce the gathered results in one worker call.

        Returns the *reduce* future (its ``map_futures`` attribute holds
        the map phase). The reducer is invoked with the list of map
        results in submission order once every map call has succeeded; a
        failed map call fails the reduce future with that same error,
        without invoking the reducer.
        """
        map_futures = self.map(map_fn, iterable)
        job = self._new_job("reduce")
        reduce_future = ResponseFuture(
            self.env, job.job_id, f"{job.job_id}-00000",
            self.config.function_name, None, monitor=job.monitor)
        reduce_future.map_futures = map_futures
        job.futures.append(reduce_future)
        self.env.process(
            self._reduce_driver(job, reduce_future, map_futures, reduce_fn),
            name=f"reduce-{job.job_id}")
        return reduce_future

    def _new_job(self, kind: str) -> Job:
        job_id = f"j{len(self.jobs):03d}"
        monitor = JobMonitor(self.env, job_id)
        recorder = get_recorder()
        if recorder.enabled:
            monitor.span = recorder.start_trace(
                f"futures {job_id} {kind}", self.env.now, category="futures",
                attrs={"job": job_id, "kind": kind})
        job = Job(job_id, kind, monitor)
        self.jobs.append(job)
        if self.config.monitor_poll_s is not None:
            self.env.process(monitor.watch(self.config.monitor_poll_s),
                             name=f"monitor-{job_id}")
        return job

    def _submit(self, job: Job, fn, data: Any) -> ResponseFuture:
        call_id = f"{job.job_id}-{len(job.futures):05d}"
        future = ResponseFuture(self.env, job.job_id, call_id,
                                self.config.function_name, data,
                                monitor=job.monitor)
        job.futures.append(future)
        if not self._admit(future):
            return future
        self.invoker.submit(future, fn, parent=job.monitor.span)
        return future

    def _admit(self, future: ResponseFuture) -> bool:
        """Pass the call through shard admission; reject it when shed."""
        if self.router is None or self.tenant is None:
            return True
        release = self.router.offer_external(self.tenant)
        if release is None:
            self.shed_calls += 1
            future.reject(AdmissionShed(
                f"tenant {self.tenant!r}: shard admission shed "
                f"call {future.call_id}"))
            return False
        self.env.process(self._release_on_done(future, release),
                         name=f"admit-{future.call_id}")
        return True

    def _release_on_done(self, future: ResponseFuture, release):
        yield future.done_event
        release()

    def _maybe_speculate(self, job: Job, futures: list[ResponseFuture]) -> None:
        if self.config.invoker.speculate and len(futures) > 1:
            self.env.process(self.invoker.speculate(futures),
                             name=f"speculate-{job.job_id}")

    def _reduce_driver(self, job: Job, reduce_future: ResponseFuture,
                       map_futures: list[ResponseFuture], reduce_fn):
        """Process: await the map phase, then dispatch the reducer."""
        if map_futures:
            yield AllOf(self.env,
                        [future.done_event for future in map_futures])
        failed = next((future for future in map_futures
                       if not future.success), None)
        if failed is not None:
            reduce_future.reject(failed.error)
            return reduce_future
        reduce_future.data = [future.result() for future in map_futures]
        if self._admit(reduce_future):
            self.invoker.submit(reduce_future, reduce_fn,
                                parent=job.monitor.span)
        yield reduce_future.done_event
        return reduce_future

    # -- waiting ---------------------------------------------------------------

    def wait(self, fs, when: str = ALL_COMPLETED):
        """Process: wait for futures per ``when``; returns ``(done, pending)``.

        ``ALL_COMPLETED`` waits for every future, ``ANY_COMPLETED``
        until at least one is done (immediately if one already is), and
        ``ALWAYS`` returns the current split without waiting.
        """
        if when not in _WAIT_CONDITIONS:
            raise ValueError(f"unknown wait condition {when!r}; expected "
                             f"one of {_WAIT_CONDITIONS}")
        fs = list(fs)
        open_events = [future.done_event for future in fs if not future.done]
        if when == ALL_COMPLETED and open_events:
            yield AllOf(self.env, open_events)
        elif when == ANY_COMPLETED and len(open_events) == len(fs) and fs:
            yield AnyOf(self.env, open_events)
        done = [future for future in fs if future.done]
        pending = [future for future in fs if not future.done]
        return done, pending

    def get_result(self, fs, throw_except: bool = True):
        """Process: wait for ``fs`` and return result(s) in input order.

        A single future yields its value; an iterable yields a list.
        """
        if isinstance(fs, ResponseFuture):
            yield from self.wait([fs])
            return fs.result(throw_except)
        fs = list(fs)
        yield from self.wait(fs)
        return [future.result(throw_except) for future in fs]

    def drain(self):
        """Process: await abandoned speculative attempts still in flight.

        Run before auditing platform-level costs — zombies bill on
        completion.
        """
        drained = yield from self.invoker.drain()
        return drained

    # -- accounting ------------------------------------------------------------

    @property
    def futures(self) -> list[ResponseFuture]:
        """Every future this executor created, in submission order."""
        return [future for job in self.jobs for future in job.futures]

    def compute_cost_usd(self) -> float:
        """Sum of per-future attempt costs (the futures-side view)."""
        return sum(future.cost_usd for future in self.futures)

    def catalog_cost_usd(self) -> float:
        """Pricing-catalog compute total over the platform's records.

        Itemizes every invocation record of the worker function through
        :class:`~repro.pricing.calculator.CostCalculator` — the
        experiment-accounting view the per-future sum must reproduce.
        """
        calculator = CostCalculator()
        for record in self.platform.records:
            if record.function == self.function.name:
                calculator.add_function_invocation(
                    self.function.memory_bytes, record.duration,
                    self.function.ephemeral_bytes, label="futures")
        return calculator.cost.total

    def summary(self) -> dict:
        """JSON-ready executor statistics (jobs, states, dispatch)."""
        states = {"pending": 0, "running": 0, "success": 0, "error": 0}
        for job in self.jobs:
            for state, count in job.monitor.counts.items():
                states[state] += count
        return {
            "function": self.function.name,
            "jobs": [job.monitor.summary() for job in self.jobs],
            "calls": sum(job.monitor.total for job in self.jobs),
            "states": states,
            "invoker": self.invoker.summary(),
            "compute_cost_usd": round(self.compute_cost_usd(), 12),
        }
