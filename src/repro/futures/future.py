"""Simulated response futures for the Lithops-style programming API.

A :class:`ResponseFuture` is the handle a :class:`FunctionExecutor`
returns for every asynchronous invocation. It moves through a small
state machine on the *virtual* clock — ``pending`` (submitted, queued in
the invoker), ``running`` (dispatched to the platform), then ``success``
or ``error`` — and accumulates one :class:`AttemptRecord` per platform
invocation launched on its behalf (primary, retries, and speculative
duplicates), so per-future cost always reflects everything that was
actually billed.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Any, Optional

from repro.faas.function import InvocationRecord
from repro.pricing.catalog import LAMBDA_PRICING

#: Future lifecycle states, in order.
PENDING = "pending"
RUNNING = "running"
SUCCESS = "success"
ERROR = "error"

#: Terminal states.
DONE_STATES = (SUCCESS, ERROR)


@dataclass(frozen=True)
class AttemptRecord:
    """Billing and outcome data of one platform invocation of a future."""

    attempt: int
    hedged: bool
    requested_at: float
    started_at: float
    finished_at: float
    cold: bool
    ok: bool
    error_type: Optional[str]
    cost_usd: float

    @property
    def duration(self) -> float:
        """Billed handler duration of this attempt."""
        return self.finished_at - self.started_at

    def to_dict(self) -> dict:
        return {
            "attempt": self.attempt,
            "hedged": self.hedged,
            "requested_at": round(self.requested_at, 9),
            "started_at": round(self.started_at, 9),
            "finished_at": round(self.finished_at, 9),
            "cold": self.cold,
            "ok": self.ok,
            "error_type": self.error_type,
            "cost_usd": round(self.cost_usd, 12),
        }


def attempt_cost_usd(record: InvocationRecord, memory_bytes: float,
                     ephemeral_bytes: float = 0.0) -> float:
    """Pricing-catalog cost of one invocation record.

    Uses the exact same formula the experiment cost calculator applies,
    so summing per-future costs reproduces the catalog total.
    """
    return LAMBDA_PRICING.invocation_cost(
        memory_bytes, record.duration, ephemeral_bytes)


class ResponseFuture:
    """Handle for one asynchronous function call in the simulation.

    Futures are created by :class:`~repro.futures.executor.
    FunctionExecutor` and driven by its invoker; user code only reads
    them (``state``, :meth:`result`, ``cost_usd``) and waits on them via
    ``executor.wait`` / ``executor.get_result``.
    """

    def __init__(self, env, job_id: str, call_id: str, function: str,
                 data: Any, monitor=None) -> None:
        self.env = env
        self.job_id = job_id
        self.call_id = call_id
        self.function = function
        #: The item this call maps over (rewritten by the reduce driver
        #: once the map phase has produced the reducer's input).
        self.data = data
        self.state = PENDING
        self.created_at = env.now
        self.dispatched_at: Optional[float] = None
        self.finished_at: Optional[float] = None
        #: One entry per platform invocation launched for this call.
        self.attempts: list[AttemptRecord] = []
        #: Whether a speculative duplicate was launched.
        self.hedged = False
        #: Event triggered exactly once, on the pending -> done edge.
        self.done_event = env.event()
        self._result: Any = None
        self._error: Optional[BaseException] = None
        self._monitor = monitor
        #: Set by the speculator to request a duplicate attempt; the
        #: invoker's drive loop observes it via ``_wake``.
        self._spec_requested = False
        #: Rebuilt by the drive loop each wait round so the speculator
        #: can interrupt a wait without touching attempt processes.
        self._wake = None
        if monitor is not None:
            monitor.on_create(self)

    # -- state accessors ------------------------------------------------------

    @property
    def done(self) -> bool:
        """Whether the future reached a terminal state."""
        return self.state in DONE_STATES

    @property
    def success(self) -> bool:
        """Whether the future finished without an error."""
        return self.state == SUCCESS

    @property
    def error(self) -> Optional[BaseException]:
        """The terminal error, if the future failed."""
        return self._error

    def result(self, throw_except: bool = True) -> Any:
        """The call's return value.

        Raises ``RuntimeError`` while the future is not done (wait on it
        first — the simulation cannot block outside a process). With
        ``throw_except`` (the default) a failed future re-raises its
        error; otherwise ``None`` is returned.
        """
        if not self.done:
            raise RuntimeError(
                f"future {self.call_id} is {self.state}; wait() on it "
                f"before reading its result")
        if self.state == ERROR:
            if throw_except:
                raise self._error
            return None
        return self._result

    # -- accounting -----------------------------------------------------------

    @property
    def cost_usd(self) -> float:
        """Pricing-catalog compute cost of every attempt billed so far."""
        return sum(a.cost_usd for a in self.attempts)

    @property
    def cost_cents(self) -> float:
        """Compute cost in cents (the paper reports query costs in ¢)."""
        return self.cost_usd * 100.0

    def status(self) -> dict:
        """JSON-ready snapshot of this future's state and accounting."""
        return {
            "call_id": self.call_id,
            "job_id": self.job_id,
            "state": self.state,
            "created_at": round(self.created_at, 9),
            "dispatched_at": (round(self.dispatched_at, 9)
                              if self.dispatched_at is not None else None),
            "finished_at": (round(self.finished_at, 9)
                            if self.finished_at is not None else None),
            "attempts": len(self.attempts),
            "hedged": self.hedged,
            "error_type": (type(self._error).__name__
                           if self._error is not None else None),
            "cost_usd": round(self.cost_usd, 12),
        }

    # -- transitions (invoker-only) -------------------------------------------

    def mark_running(self, now: float) -> None:
        """Invoker hook: the call was dispatched to the platform."""
        self.dispatched_at = now
        self._transition(RUNNING)

    def resolve(self, value: Any) -> None:
        """Invoker hook: an attempt returned successfully."""
        self._result = value
        self.finished_at = self.env.now
        self._transition(SUCCESS)
        self.done_event.succeed(self)

    def reject(self, error: BaseException) -> None:
        """Invoker hook: the call failed terminally."""
        self._error = error
        self.finished_at = self.env.now
        self._transition(ERROR)
        self.done_event.succeed(self)

    def _transition(self, state: str) -> None:
        previous = self.state
        self.state = state
        if self._monitor is not None:
            self._monitor.on_transition(self, previous, state)

    def __repr__(self) -> str:
        return f"<ResponseFuture {self.call_id} {self.state}>"
