"""End-to-end futures workloads, runnable as deterministic scenarios.

Two workload families exercise the subsystem the way the paper's
evaluation drives Lambda over S3 (and the way Lambada-style systems
drive serverless scans):

* :func:`run_wordcount` — a **map-reduce aggregation** over a
  partitioned S3 prefix: a seeded corpus of fixed-width records is
  written to object storage, split into byte-range chunks by the
  partitioner, counted per chunk by mapper functions (ranged GETs
  through the retrying client plus CPU work), and merged by one reducer.
* :func:`run_sweep` — a **parallel parameter sweep**: one function
  evaluation per grid point with per-point RNG streams (so results are
  independent of completion order), demonstrating ``wait(ANY)`` /
  ``wait(ALL)`` and a ``call_async`` selection step.

Each returns a JSON-ready outcome dict plus a short digest of its
canonical serialization — two runs with the same seed (and fault plan)
are byte-identical, which is what the acceptance criterion, the bench
scenario, and the CI smoke job all check. Per-future costs are audited
against the pricing-catalog total on every run (``cost_check``).
"""

from __future__ import annotations

import hashlib
import math
from typing import Optional

from repro import units
from repro.chaos.injector import FaultInjector
from repro.faas.platform import LambdaPlatform
from repro.futures.executor import (
    ANY_COMPLETED,
    ExecutorConfig,
    FunctionExecutor,
)
from repro.futures.invoker import InvokerConfig
from repro.futures.partitioner import partition_prefix
from repro.network import Fabric
from repro.pricing.calculator import CostCalculator
from repro.sim import Environment, RandomStreams
from repro.storage import RetryingClient, S3Standard
from repro.telemetry.export import canonical_json, round_floats

#: Fixed record width of the wordcount corpus: a word padded with dots
#: plus a newline, so byte-range chunks align on record boundaries.
RECORD_BYTES = 16

#: Wordcount vocabulary (longest entry must fit RECORD_BYTES - 1).
VOCAB = ("alpha", "bravo", "charlie", "delta", "echo", "foxtrot",
         "golf", "hotel", "india", "juliet", "kilo", "lima")

#: CPU seconds a mapper spends per MiB scanned (counting is cheap).
CPU_S_PER_MIB = 0.02

#: Sweep loss-curve minimum; evaluations search a grid around it.
SWEEP_TARGET = 2.37


def _digest(outcome: dict) -> str:
    """Short content digest of an outcome's canonical serialization."""
    return hashlib.sha256(
        canonical_json(outcome).encode("utf-8")).hexdigest()[:16]


def _cost_check(compute_usd: float, catalog_usd: float) -> str:
    """Audit the per-future cost sum against the catalog total.

    Both sides apply the identical pricing formula per attempt, so they
    differ only by float summation order — compared with a tight
    relative tolerance, never exact equality.
    """
    ok = math.isclose(compute_usd, catalog_usd, rel_tol=1e-9, abs_tol=1e-15)
    return "ok" if ok else "mismatch"


class _Sim:
    """One simulation stack: env, fabric, platform, S3, executor."""

    def __init__(self, seed: int, invoker: InvokerConfig,
                 monitor_poll_s: Optional[float] = None,
                 plan=None) -> None:
        self.env = Environment()
        self.fabric = Fabric(self.env)
        self.rng = RandomStreams(seed=seed)
        self.platform = LambdaPlatform(self.env, self.fabric, self.rng)
        self.s3 = S3Standard(self.env, self.fabric, self.rng)
        self.executor = FunctionExecutor(
            self.env, self.platform, self.rng,
            config=ExecutorConfig(invoker=invoker,
                                  monitor_poll_s=monitor_poll_s))
        self.injector = None
        if plan is not None:
            self.injector = FaultInjector(plan, self.rng)
            self.injector.install(platform=self.platform,
                                  services=(self.s3,))

    def run(self, scenario):
        """Drive ``scenario`` (a generator) to completion; returns its value."""
        process = self.env.process(scenario, name="workload")
        self.env.run(until=process)
        return process.value

    def costs(self) -> dict:
        """Itemized workload cost: compute (two views) plus storage."""
        compute = self.executor.compute_cost_usd()
        catalog = self.executor.catalog_cost_usd()
        storage = CostCalculator()
        storage.add_storage_requests(self.s3.name, self.s3.stats)
        storage_usd = storage.cost.total
        return {
            "compute_cost_usd": compute,
            "catalog_cost_usd": catalog,
            "storage_cost_usd": storage_usd,
            "total_cost_usd": catalog + storage_usd,
            "cost_check": _cost_check(compute, catalog),
        }


# -- map-reduce wordcount ------------------------------------------------------


def _record(word: str) -> str:
    return word + "." * (RECORD_BYTES - 1 - len(word)) + "\n"


def _seed_corpus(sim: _Sim, prefix: str, objects: int,
                 records_per_object: int):
    """Process: write the seeded fixed-width corpus under ``prefix``."""
    stream = sim.rng.stream("futures.corpus")
    for index in range(objects):
        draws = stream.integers(0, len(VOCAB), size=records_per_object)
        payload = "".join(_record(VOCAB[int(draw)]) for draw in draws)
        yield from sim.s3.put(f"{prefix}part-{index:05d}", payload)


def make_word_counter(env, service):
    """Build the mapper: ranged read of one chunk, then count words."""

    def count_words(context, chunk):
        client = RetryingClient(env, service, endpoint=context.endpoint)
        obj = yield from client.get_range(chunk.key, chunk.offset,
                                          chunk.length)
        yield context.compute(CPU_S_PER_MIB * obj.size / units.MiB)
        counts: dict[str, int] = {}
        for record in obj.payload.splitlines():
            word = record.rstrip(".")
            counts[word] = counts.get(word, 0) + 1
        return counts

    return count_words


def merge_counts(context, results):
    """The reducer: merge per-chunk counts (submission order), rank words."""
    yield context.compute(0.001 * max(1, len(results)))
    total: dict[str, int] = {}
    for counts in results:
        for word, count in counts.items():
            total[word] = total.get(word, 0) + count
    top = sorted(total.items(), key=lambda item: (-item[1], item[0]))[:10]
    return {
        "top": [[word, int(count)] for word, count in top],
        "records": int(sum(total.values())),
        "distinct_words": len(total),
    }


def run_wordcount(seed: int = 7, objects: int = 16,
                  records_per_object: int = 256,
                  chunks_per_object: int = 4,
                  plan=None, speculate: bool = False,
                  monitor_poll_s: Optional[float] = None) -> dict:
    """Map-reduce wordcount over a partitioned S3 prefix.

    The default sizing partitions ``16`` objects x ``4`` byte-range
    chunks = 64 mapper calls — the acceptance-criterion scale. Returns
    the outcome dict (with ``digest``).
    """
    if records_per_object % chunks_per_object != 0:
        raise ValueError(
            f"records_per_object={records_per_object} must divide evenly "
            f"into chunks_per_object={chunks_per_object}")
    sim = _Sim(seed, InvokerConfig(speculate=speculate),
               monitor_poll_s=monitor_poll_s, plan=plan)
    prefix = "corpus/"
    chunk_bytes = records_per_object // chunks_per_object * RECORD_BYTES

    def scenario():
        yield from _seed_corpus(sim, prefix, objects, records_per_object)
        chunks = partition_prefix(sim.s3, prefix, chunk_bytes=chunk_bytes,
                                  align_bytes=RECORD_BYTES)
        started_at = sim.env.now
        reduce_future = sim.executor.map_reduce(
            make_word_counter(sim.env, sim.s3), chunks, merge_counts)
        result = yield from sim.executor.get_result(reduce_future)
        yield from sim.executor.drain()
        return {"chunks": len(chunks), "started_at": started_at,
                "result": result, "reduce_future": reduce_future}

    value = sim.run(scenario())
    summary = sim.executor.summary()
    outcome = {
        "workload": "wordcount",
        "seed": seed,
        "objects": objects,
        "chunks": value["chunks"],
        "records": value["result"]["records"],
        "distinct_words": value["result"]["distinct_words"],
        "top": value["result"]["top"],
        "map_calls": len(value["reduce_future"].map_futures),
        "states": summary["states"],
        "retries": summary["invoker"]["retries"],
        "speculations": summary["invoker"]["speculations"],
        "zombies_drained": summary["invoker"]["zombies_drained"],
        "inflight_peak": summary["invoker"]["inflight_peak"],
        "faults": (sim.injector.fault_counts
                   if sim.injector is not None else {}),
        "runtime_s": sim.env.now - value["started_at"],
    }
    outcome.update(sim.costs())
    outcome = round_floats(outcome)
    outcome["digest"] = _digest(outcome)
    return outcome


# -- parallel parameter sweep --------------------------------------------------


def make_evaluator(rng):
    """Build the sweep evaluation function over a noisy quadratic.

    Noise comes from a per-point RNG stream, so a point's result does
    not depend on completion order or on which other points ran.
    """

    def evaluate(context, point):
        yield context.compute(0.05 + 0.01 * (point["index"] % 5))
        stream = rng.stream(f"futures.sweep.{point['index']}")
        noise = float(stream.normal(0.0, 0.05))
        loss = (point["x"] - SWEEP_TARGET) ** 2 + noise
        return {"index": point["index"], "x": point["x"],
                "loss": round(loss, 9)}

    return evaluate


def select_best(context, results):
    """Selection step: argmin of the gathered losses."""
    yield context.compute(0.001 * max(1, len(results)))
    best = min(results, key=lambda entry: (entry["loss"], entry["index"]))
    return best


def run_sweep(seed: int = 7, points: int = 24, span: float = 4.0,
              plan=None, speculate: bool = False) -> dict:
    """Parallel parameter sweep with an async selection step."""
    if points < 2:
        raise ValueError(f"points must be >= 2, got {points}")
    sim = _Sim(seed, InvokerConfig(speculate=speculate), plan=plan)
    grid = [{"index": index, "x": round(index * span / (points - 1), 9)}
            for index in range(points)]

    def scenario():
        started_at = sim.env.now
        futures = sim.executor.map(make_evaluator(sim.rng), grid)
        done, pending = yield from sim.executor.wait(
            futures, when=ANY_COMPLETED)
        first_wave = len(done)
        results = yield from sim.executor.get_result(futures)
        best_future = sim.executor.call_async(select_best, results)
        best = yield from sim.executor.get_result(best_future)
        yield from sim.executor.drain()
        return {"started_at": started_at, "first_wave": first_wave,
                "results": results, "best": best}

    value = sim.run(scenario())
    summary = sim.executor.summary()
    outcome = {
        "workload": "sweep",
        "seed": seed,
        "points": points,
        "first_wave": value["first_wave"],
        "best": value["best"],
        "losses": [entry["loss"] for entry in value["results"]],
        "states": summary["states"],
        "retries": summary["invoker"]["retries"],
        "speculations": summary["invoker"]["speculations"],
        "zombies_drained": summary["invoker"]["zombies_drained"],
        "faults": (sim.injector.fault_counts
                   if sim.injector is not None else {}),
        "runtime_s": sim.env.now - value["started_at"],
    }
    outcome.update(sim.costs())
    outcome = round_floats(outcome)
    outcome["digest"] = _digest(outcome)
    return outcome
