"""Data partitioner: split storage objects and prefixes into chunks.

The futures analogue of lithops' ``job/partitioner.py``: given a storage
service and a key prefix, produce the per-function work units a ``map``
fans out over. Two strategies are supported:

* **object granularity** — one :class:`DataChunk` per object (no
  ``chunk_bytes``), the right shape when objects are already the unit of
  work;
* **byte ranges** — each object is split into ``ceil(size /
  chunk_bytes)`` ranges, optionally aligned down to a record width so a
  fixed-width ETL mapper never sees a torn record.

Chunk order is deterministic: objects in sorted key order, ranges in
ascending offset, and every chunk carries its global ``index`` so
results can be reassembled regardless of completion order.
"""

from __future__ import annotations

import math
from dataclasses import dataclass, replace
from typing import Optional


@dataclass(frozen=True)
class DataChunk:
    """One unit of mapper input: a byte range of one storage object."""

    key: str
    #: Byte offset of this chunk within the object.
    offset: float
    #: Byte length of this chunk.
    length: float
    #: Total logical size of the backing object.
    object_size: float
    #: Range index within the object, and the object's range count.
    part: int
    parts: int
    #: Global chunk index across the whole partition job.
    index: int = 0

    @property
    def whole_object(self) -> bool:
        """Whether this chunk covers its object end to end."""
        return self.offset == 0.0 and self.length == self.object_size

    def to_dict(self) -> dict:
        return {"key": self.key, "offset": self.offset,
                "length": self.length, "object_size": self.object_size,
                "part": self.part, "parts": self.parts, "index": self.index}


def partition_object(key: str, size: float,
                     chunk_bytes: Optional[float] = None,
                     align_bytes: Optional[float] = None) -> list[DataChunk]:
    """Split one object into chunks.

    Without ``chunk_bytes`` (or when the object fits in one chunk) the
    object is a single whole-object chunk — including zero-byte objects,
    which still represent one unit of work. With ``align_bytes``, every
    interior boundary is rounded down to a multiple of it; boundaries
    that collapse onto their predecessor are dropped rather than
    emitting empty chunks.
    """
    if size < 0:
        raise ValueError(f"object size must be >= 0, got {size}")
    if chunk_bytes is None or size <= chunk_bytes:
        return [DataChunk(key=key, offset=0.0, length=size,
                          object_size=size, part=0, parts=1)]
    if chunk_bytes <= 0:
        raise ValueError(f"chunk_bytes must be positive, got {chunk_bytes}")
    if align_bytes is not None and align_bytes <= 0:
        raise ValueError(f"align_bytes must be positive, got {align_bytes}")
    boundaries = [0.0]
    for part in range(1, math.ceil(size / chunk_bytes)):
        cut = part * chunk_bytes
        if align_bytes is not None:
            cut = math.floor(cut / align_bytes) * align_bytes
        if cut > boundaries[-1]:
            boundaries.append(float(cut))
    boundaries.append(float(size))
    parts = len(boundaries) - 1
    return [DataChunk(key=key, offset=boundaries[part],
                      length=boundaries[part + 1] - boundaries[part],
                      object_size=float(size), part=part, parts=parts)
            for part in range(parts)]


def partition_prefix(service, prefix: str = "",
                     chunk_bytes: Optional[float] = None,
                     align_bytes: Optional[float] = None) -> list[DataChunk]:
    """Partition every object under ``prefix`` into mapper chunks.

    ``service`` is any storage service (``list_keys`` + ``head``); only
    metadata is read, so partitioning is free of simulated time and can
    run before the job process starts. An empty prefix listing yields an
    empty chunk list.
    """
    chunks: list[DataChunk] = []
    for key in service.list_keys(prefix):
        size = service.head(key).size
        for chunk in partition_object(key, size, chunk_bytes=chunk_bytes,
                                      align_bytes=align_bytes):
            chunks.append(replace(chunk, index=len(chunks)))
    return chunks
