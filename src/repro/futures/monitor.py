"""Job monitor: invocation-state tracking on the virtual clock.

One :class:`JobMonitor` observes one job (a ``map``, ``map_reduce``
phase, or ``call_async`` batch): it counts futures per lifecycle state,
records every transition with its virtual timestamp, and — when a poll
interval is configured — runs a monitor *process* that samples the
pending/running population into telemetry time series, the simulated
analogue of lithops' job monitor thread. Polling is an explicit
simulation feature (it schedules events), so it is gated on the
executor's configuration, never on whether telemetry happens to be
recording — telemetry on vs. off stays byte-identical.
"""

from __future__ import annotations

from repro.futures.future import DONE_STATES, ERROR, PENDING
from repro.telemetry import get_recorder

#: Transition log entries kept verbatim; beyond this only counters grow.
TRANSITION_CAP = 4096


class JobMonitor:
    """Tracks the lifecycle of one job's futures on the virtual clock."""

    def __init__(self, env, job_id: str) -> None:
        self.env = env
        self.job_id = job_id
        self.total = 0
        self.counts: dict[str, int] = {
            "pending": 0, "running": 0, "success": 0, "error": 0}
        #: ``{"t", "call_id", "from", "to"}`` entries, capped.
        self.transitions: list[dict] = []
        self.dropped_transitions = 0
        #: Job span the executor parents all dispatches under; finished
        #: here when the last future reaches a terminal state.
        self.span = None
        recorder = get_recorder()
        self._telemetry = recorder if recorder.enabled else None

    # -- future hooks ---------------------------------------------------------

    def on_create(self, future) -> None:
        """A future was created in the pending state."""
        self.total += 1
        self.counts[PENDING] += 1
        self._log(future, "", PENDING)

    def on_transition(self, future, previous: str, state: str) -> None:
        """A future moved from ``previous`` to ``state``."""
        self.counts[previous] -= 1
        self.counts[state] = self.counts.get(state, 0) + 1
        self._log(future, previous, state)
        if state in DONE_STATES:
            if self._telemetry is not None:
                self._telemetry.counter(
                    f"futures.calls.{state}").value += 1
                finished = future.finished_at \
                    if future.finished_at is not None else self.env.now
                self._telemetry.histogram(
                    "futures.call.latency_s").observe(
                        finished - future.created_at)
                if state == ERROR:
                    self._telemetry.event(
                        self.env.now, "futures.call_failed",
                        category="futures", job=self.job_id,
                        call_id=future.call_id,
                        error=type(future.error).__name__)
            if self.done and self.span is not None:
                self.span.finish(self.env.now, calls=self.total,
                                 errors=self.counts[ERROR])
                self.span = None

    def _log(self, future, previous: str, state: str) -> None:
        if len(self.transitions) >= TRANSITION_CAP:
            self.dropped_transitions += 1
            return
        self.transitions.append({
            "t": round(self.env.now, 9), "call_id": future.call_id,
            "from": previous, "to": state})

    # -- views ----------------------------------------------------------------

    @property
    def done(self) -> bool:
        """Whether every created future reached a terminal state."""
        done = self.counts["success"] + self.counts["error"]
        return self.total > 0 and done == self.total

    @property
    def open_calls(self) -> int:
        """Futures still pending or running."""
        return self.counts["pending"] + self.counts["running"]

    def summary(self) -> dict:
        """JSON-ready job summary (counts and transition log size)."""
        return {
            "job_id": self.job_id,
            "calls": self.total,
            "counts": dict(self.counts),
            "transitions": len(self.transitions),
            "dropped_transitions": self.dropped_transitions,
        }

    # -- the monitor process --------------------------------------------------

    def watch(self, poll_s: float):
        """Process: sample the job's open population until it drains.

        Samples go into ``futures.<job>.pending`` / ``.running`` time
        series (no-ops under the null recorder). The process ends when
        the job does, so an executor with ``monitor_poll_s`` set never
        leaves a runaway poller in the event queue.
        """
        if poll_s <= 0:
            raise ValueError(f"poll interval must be positive, got {poll_s}")
        recorder = get_recorder()
        pending = recorder.timeseries(f"futures.{self.job_id}.pending")
        running = recorder.timeseries(f"futures.{self.job_id}.running")
        while not self.done:
            pending.sample(self.env.now, float(self.counts["pending"]))
            running.sample(self.env.now, float(self.counts["running"]))
            yield self.env.timeout(poll_s)
        pending.sample(self.env.now, 0.0)
        running.sample(self.env.now, 0.0)
