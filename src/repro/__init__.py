"""Skyrise reproduction: serverless cloud infrastructure for data processing.

A full reproduction of "An Empirical Evaluation of Serverless Cloud
Infrastructure for Large-Scale Data Processing" (EDBT 2025) on a
discrete-event simulation of the AWS serverless stack.

Entry points:

* :class:`repro.core.CloudSim` — a simulated AWS region (Lambda, EC2,
  S3/S3 Express/DynamoDB/EFS on an event-driven network fabric);
* :class:`repro.engine.SkyriseEngine` — the serverless query engine;
* :class:`repro.core.Driver` — the experiment framework driving the
  paper's microbenchmarks and query workloads;
* :mod:`repro.pricing` — AWS price catalog and the break-even formulas
  of the paper's economic analysis.

See README.md for a quickstart, DESIGN.md for the system inventory, and
EXPERIMENTS.md for paper-vs-measured results.
"""

__version__ = "1.0.0"
