"""Warm-pool manager: scheduled keep-alive pings against the platform.

Coldstarts dominate tail latency for sparse tenants (Section 4.1's
startup analysis); providers answer with provisioned concurrency, users
answer with keep-alive pings. The manager holds a target number of
sandboxes warm per function by pinging on a fixed interval shorter than
the idle-reclamation lifetime, and accounts for what that insurance
costs via :class:`~repro.pricing.calculator.CostCalculator` — making the
ping-cost vs. coldstart-latency trade-off measurable.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.pricing.calculator import CostCalculator

#: Default ping interval: comfortably below the ~6-minute median idle
#: lifetime, so a pinged sandbox rarely expires between pings.
DEFAULT_INTERVAL_S = 240.0


@dataclass
class WarmPoolStats:
    """Outcome counters of one warm pool over one run."""

    pings: int = 0
    #: Pings that refreshed an already-warm sandbox.
    hits: int = 0
    #: Pings that had to create (coldstart) a sandbox.
    misses: int = 0
    #: Pings skipped for lack of account concurrency headroom.
    skipped: int = 0
    rounds: int = 0

    @property
    def hit_rate(self) -> float:
        """Fraction of executed pings that found a warm sandbox."""
        executed = self.hits + self.misses
        return self.hits / executed if executed else 0.0

    @property
    def cold_start_rate(self) -> float:
        """Fraction of executed pings that paid a coldstart."""
        executed = self.hits + self.misses
        return self.misses / executed if executed else 0.0

    def absorb(self, outcome: dict) -> None:
        """Fold one :meth:`LambdaPlatform.keep_alive` outcome in."""
        self.hits += outcome["hits"]
        self.misses += outcome["misses"]
        self.skipped += outcome["skipped"]
        self.pings += outcome["hits"] + outcome["misses"]


class WarmPoolManager:
    """Keeps target sandbox counts warm for a set of functions."""

    def __init__(self, env, platform, targets: dict[str, int],
                 interval_s: float = DEFAULT_INTERVAL_S) -> None:
        if interval_s <= 0:
            raise ValueError("interval must be positive")
        for name, target in targets.items():
            if target <= 0:
                raise ValueError(f"target for {name!r} must be positive")
        self.env = env
        self.platform = platform
        self.targets = dict(targets)
        self.interval_s = interval_s
        self.stats = WarmPoolStats()

    def run(self, until: float):
        """Process: ping every function each interval until ``until``."""
        while self.env.now < until:
            for name, target in self.targets.items():
                outcome = yield from self.platform.keep_alive(name, target)
                self.stats.absorb(outcome)
            self.stats.rounds += 1
            remaining = until - self.env.now
            if remaining <= 0:
                break
            yield self.env.timeout(min(self.interval_s, remaining))

    def ping_cost_usd(self) -> float:
        """Dollars spent on keep-alive invocations so far."""
        calculator = CostCalculator()
        for record in self.platform.records:
            if record.response == "keep-alive":
                config = self.platform.function(record.function)
                calculator.add_function_invocation(
                    config.memory_bytes, record.duration,
                    label=f"keep-alive:{record.function}")
        return calculator.cost.total
