"""Serving metrics: queue wait, latency percentiles, SLO, shed, cost.

Records the lifecycle of every query a tenant offers to the gateway —
submitted, shed, or completed — and reduces the records to the serving
numbers operators actually watch: per-tenant p50/p95/p99 end-to-end
latency, mean queue wait, SLO attainment, shed rate, and dollars per
query. A shed query counts against SLO attainment: traffic turned away
is traffic not served within its deadline.
"""

from __future__ import annotations

import math
from dataclasses import dataclass, field

from repro.analysis.stats import percentiles

#: Percentile points reported for end-to-end latency.
LATENCY_POINTS = (50.0, 95.0, 99.0)


def cost_per_query(total_cost_usd: float, completed: int,
                   offered: int) -> float:
    """Average dollars per served query, distinguishing empty regimes.

    * No traffic was offered: serving nothing costs nothing per query
      (0.0) — not infinity, which would poison downstream aggregation.
    * Traffic was offered but nothing completed (all shed or failed):
      genuinely infinite unit cost — money may have been spent, queries
      were not served.
    """
    if offered <= 0:
        return 0.0
    if completed <= 0:
        return math.inf
    return total_cost_usd / completed


@dataclass
class CompletedQuery:
    """Lifecycle timestamps and cost of one served query."""

    tenant: str
    query_id: str
    submitted_at: float
    started_at: float
    finished_at: float
    #: Engine-reported execution time (excludes queue wait).
    runtime: float = 0.0
    cost_usd: float = 0.0
    #: Recovery accounting of the underlying execution (zero when the
    #: query ran fault-free).
    retries: int = 0
    hedges: int = 0

    @property
    def queue_wait(self) -> float:
        """Time spent in the gateway queue before dispatch."""
        return self.started_at - self.submitted_at

    @property
    def latency(self) -> float:
        """End-to-end latency the tenant observed."""
        return self.finished_at - self.submitted_at


@dataclass
class TenantReport:
    """Reduced serving metrics of one tenant over one run."""

    tenant: str
    offered: int
    completed: int
    shed: int
    latency_p50: float
    latency_p95: float
    latency_p99: float
    mean_queue_wait: float
    slo_latency_s: float
    slo_attainment: float
    cost_usd: float
    #: Queries that started executing but errored out — distinct from
    #: ``shed`` (turned away at admission, never started).
    failed: int = 0
    #: Served queries that needed at least one retry or hedge.
    recovered: int = 0

    @property
    def shed_rate(self) -> float:
        """Fraction of offered queries turned away at admission."""
        return self.shed / self.offered if self.offered else 0.0

    @property
    def cost_per_query(self) -> float:
        """Dollars per served query (see :func:`cost_per_query`)."""
        return cost_per_query(self.cost_usd, self.completed, self.offered)

    def row(self) -> list:
        """Table row used by the CLI and benchmark renderings."""
        cpq = self.cost_per_query
        return [self.tenant, self.offered, self.completed, self.shed,
                f"{self.latency_p50:.2f}", f"{self.latency_p95:.2f}",
                f"{self.latency_p99:.2f}", f"{self.mean_queue_wait:.2f}",
                f"{self.slo_attainment * 100:.1f}%",
                "inf" if math.isinf(cpq) else f"{cpq * 100:.3f}"]


#: Header matching :meth:`TenantReport.row`.
REPORT_HEADERS = ["Tenant", "Offered", "Done", "Shed", "p50 [s]",
                  "p95 [s]", "p99 [s]", "Wait [s]", "SLO", "¢/query"]


class ServingMetrics:
    """Accumulates per-tenant serving records during a run."""

    def __init__(self) -> None:
        self.offered: dict[str, int] = {}
        self.shed: dict[str, list[float]] = {}
        self.completed: dict[str, list[CompletedQuery]] = {}
        self.failed: dict[str, list[float]] = {}

    # -- recording ---------------------------------------------------------

    def record_offered(self, tenant: str) -> None:
        """Count one query offered by ``tenant`` (before admission)."""
        self.offered[tenant] = self.offered.get(tenant, 0) + 1

    def record_shed(self, tenant: str, at: float) -> None:
        """Count one query turned away at admission."""
        self.shed.setdefault(tenant, []).append(at)

    def record_completion(self, record: CompletedQuery) -> None:
        """File one served query under its tenant."""
        self.completed.setdefault(record.tenant, []).append(record)

    def record_failed(self, tenant: str, at: float) -> None:
        """Count one query that started executing but errored out.

        Failed queries count against SLO attainment like shed ones —
        but they are reported separately: shed is a deliberate admission
        decision, failure is an execution outcome.
        """
        self.failed.setdefault(tenant, []).append(at)

    # -- views -------------------------------------------------------------

    def tenants(self) -> list[str]:
        """Every tenant that offered traffic, in first-seen order."""
        return list(self.offered)

    def completed_count(self, tenant: str) -> int:
        """Served queries of one tenant."""
        return len(self.completed.get(tenant, []))

    def shed_count(self, tenant: str) -> int:
        """Shed queries of one tenant."""
        return len(self.shed.get(tenant, []))

    def failed_count(self, tenant: str) -> int:
        """Failed (started but errored) queries of one tenant."""
        return len(self.failed.get(tenant, []))

    def runtimes(self, tenant: str) -> list[float]:
        """Engine runtimes of a tenant's served queries, in finish order."""
        return [r.runtime for r in self.completed.get(tenant, [])]

    def tenant_report(self, tenant: str,
                      slo_latency_s: float = math.inf) -> TenantReport:
        """Reduce one tenant's records to a :class:`TenantReport`."""
        done = self.completed.get(tenant, [])
        offered = self.offered.get(tenant, 0)
        shed = self.shed_count(tenant)
        latencies = [r.latency for r in done]
        if latencies:
            pcts = percentiles(latencies, LATENCY_POINTS)
        else:
            pcts = {p: 0.0 for p in LATENCY_POINTS}
        within = sum(1 for lat in latencies if lat <= slo_latency_s)
        return TenantReport(
            tenant=tenant,
            offered=offered,
            completed=len(done),
            shed=shed,
            latency_p50=pcts[50.0],
            latency_p95=pcts[95.0],
            latency_p99=pcts[99.0],
            mean_queue_wait=(sum(r.queue_wait for r in done) / len(done)
                            if done else 0.0),
            slo_latency_s=slo_latency_s,
            slo_attainment=(within / offered) if offered else 1.0,
            cost_usd=sum(r.cost_usd for r in done),
            failed=self.failed_count(tenant),
            recovered=sum(1 for r in done if r.retries > 0 or r.hedges > 0))
