"""Multi-tenant query gateway: submission, quotas, admission control.

The gateway is the front door of the serving layer. Tenants register
with a priority class, a fair-share weight, a per-tenant concurrency
quota, and an SLO; submissions are admitted into a per-tenant queue or
shed when the tenant (or the gateway as a whole) is over its backlog
bound. The scheduler drains the queues; the gateway never runs queries
itself.

Since the sharding fabric (:mod:`repro.shard`) arrived, a gateway is
one *shard* of a fleet: it carries a ``shard_id``, a directory
``epoch`` fence that rejects submissions routed on a stale shard map,
and an optional ``default_tenant`` template so a million-tenant
workload can materialize per-tenant state lazily. Every per-event
operation is O(1) in the number of tenants — backlog is tracked with
an incrementally maintained counter and an insertion-ordered backlog
index, never by walking all tenant queues.
"""

from __future__ import annotations

import itertools
import math
from collections import deque
from dataclasses import dataclass
from typing import Any, Callable, Optional

from repro.serve.metrics import ServingMetrics
from repro.telemetry import get_recorder


class StaleEpoch(Exception):
    """A submission carried a directory epoch older than the shard's.

    Raised by :meth:`QueryGateway.submit` when the caller routed the
    request on a shard map that a rebalance (split, merge, failure
    reassignment) has since superseded. The router reacts by refreshing
    its route from the partition directory and retrying — the fence is
    what keeps a rebalanced tenant from being admitted on two shards at
    once.
    """


@dataclass(frozen=True)
class Tenant:
    """One traffic source with its serving contract.

    ``priority`` orders priority-class scheduling (lower is more
    urgent); ``weight`` sets the tenant's share under weighted fair
    scheduling; ``max_concurrent`` caps the tenant's in-flight queries
    (its concurrency quota); ``max_queue_depth`` bounds its backlog —
    submissions beyond it are shed at admission.
    """

    name: str
    priority: int = 1
    weight: float = 1.0
    max_concurrent: int = 4
    max_queue_depth: float = math.inf
    slo_latency_s: float = math.inf

    def __post_init__(self) -> None:
        if self.weight <= 0:
            raise ValueError(f"weight must be positive, got {self.weight}")
        if self.max_concurrent <= 0:
            raise ValueError("max_concurrent must be positive")
        if self.max_queue_depth <= 0:
            raise ValueError("max_queue_depth must be positive")


@dataclass
class QueryRequest:
    """One admitted query waiting for (or holding) an execution slot."""

    tenant: str
    plan: Any
    submitted_at: float
    seq: int
    priority: int
    started_at: Optional[float] = None
    finished_at: Optional[float] = None
    #: Set by the shard router when this request was drained out of a
    #: merged or failed shard and re-homed. The observability plane's
    #: tail sampler always retains fault-touched traces.
    rescued: bool = False

    @property
    def fifo_key(self) -> tuple[float, int]:
        """Global arrival order (ties broken by submission sequence)."""
        return (self.submitted_at, self.seq)


class QueryGateway:
    """Accepts tenant submissions; queues or sheds them.

    Admission control is two-level: a submission is shed when its
    tenant's queue is at ``max_queue_depth``, or when the gateway-wide
    load has reached ``max_pending`` (overload protection for the shard
    as a whole). Admitted requests wait in per-tenant FIFO queues until
    a scheduler pops them.

    ``default_tenant`` (when set) serves as the contract for tenants
    that never called :meth:`register`: their queues are created on
    first submission and discarded when drained, so resident state is
    O(tenants with backlog), not O(tenants ever seen).
    """

    def __init__(self, env, metrics: Optional[ServingMetrics] = None,
                 max_pending: float = math.inf,
                 shard_id: str = "shard-0",
                 default_tenant: Optional[Tenant] = None) -> None:
        self.env = env
        self.metrics = metrics if metrics is not None else ServingMetrics()
        self.max_pending = max_pending
        self.shard_id = shard_id
        self.default_tenant = default_tenant
        #: Directory epoch fence (see :class:`StaleEpoch`). The shard
        #: router bumps this when the partition directory reassigns any
        #: of this shard's key ranges.
        self.epoch = 0
        self.stale_rejections = 0
        self.tenants: dict[str, Tenant] = {}
        self.queues: dict[str, deque[QueryRequest]] = {}
        #: Queue entries across all tenants, maintained incrementally —
        #: never recomputed by walking the queues.
        self._pending = 0
        #: Externally admitted work (e.g. futures jobs routed through a
        #: shard router) holding capacity without sitting in a queue.
        self._external = 0
        #: Tenants with a non-empty queue, in first-backlogged order.
        self._backlog: dict[str, None] = {}
        self._seq = itertools.count()
        #: Scheduler hook, called after every successful admission.
        self.on_submit: Optional[Callable[[], None]] = None
        recorder = get_recorder()
        self._telemetry = recorder if recorder.enabled else None
        if self._telemetry is not None:
            self._depth_gauge = recorder.gauge("gateway.queue_depth")
            self._depth_series = recorder.timeseries(
                "gateway.queue_depth", min_dt=0.001)
            self._shed_counter = recorder.counter("gateway.shed")

    # -- tenancy -----------------------------------------------------------

    def register(self, tenant: Tenant) -> Tenant:
        """Register a tenant (idempotent for the same name)."""
        self.tenants[tenant.name] = tenant
        self.queues.setdefault(tenant.name, deque())
        return tenant

    def tenant(self, name: str) -> Tenant:
        """Look up a registered tenant (or the lazy default template)."""
        tenant = self.tenants.get(name)
        if tenant is not None:
            return tenant
        if self.default_tenant is not None:
            return self.default_tenant
        raise KeyError(f"tenant {name!r} is not registered")

    # -- admission ---------------------------------------------------------

    def submit(self, tenant_name: str, plan: Any,
               epoch: Optional[int] = None) -> Optional[QueryRequest]:
        """Offer one query; returns the queued request, or ``None`` if shed.

        ``epoch`` (when given) is the directory epoch the caller routed
        on; a value older than the shard's current fence raises
        :class:`StaleEpoch` *before* the offer is counted, so a routed
        retry is not double-counted as offered traffic.
        """
        if epoch is not None and epoch != self.epoch:
            self.stale_rejections += 1
            raise StaleEpoch(
                f"shard {self.shard_id}: routed on epoch {epoch}, "
                f"fence is {self.epoch}")
        tenant = self.tenant(tenant_name)
        self.metrics.record_offered(tenant_name)
        queue = self.queues.get(tenant_name)
        depth = len(queue) if queue is not None else 0
        if depth >= tenant.max_queue_depth or self.load >= self.max_pending:
            self.metrics.record_shed(tenant_name, self.env.now)
            if self._telemetry is not None:
                self._shed_counter.inc()
                self._telemetry.event(
                    self.env.now, "gateway.shed", category="serving",
                    tenant=tenant_name, queue_depth=depth,
                    total_pending=self._pending)
            return None
        request = QueryRequest(
            tenant=tenant_name, plan=plan, submitted_at=self.env.now,
            seq=next(self._seq), priority=tenant.priority)
        self._enqueue(request)
        if self.on_submit is not None:
            self.on_submit()
        return request

    def adopt(self, request: QueryRequest) -> QueryRequest:
        """Enqueue a request rescued from another shard, unconditionally.

        Used by the rebalancer when a shard is merged away or fails:
        the request was already offered (and admitted) once, so it is
        not re-counted and never shed — recovery must not lose admitted
        work. The request keeps its original submission timestamp, so
        end-to-end latency still covers the time spent on the dead
        shard's queue.
        """
        self._enqueue(request)
        if self.on_submit is not None:
            self.on_submit()
        return request

    def _enqueue(self, request: QueryRequest) -> None:
        queue = self.queues.get(request.tenant)
        if queue is None:
            queue = self.queues[request.tenant] = deque()
        if not queue:
            self._backlog[request.tenant] = None
        queue.append(request)
        self._pending += 1
        if self._telemetry is not None:
            self._note_depth()

    # -- external admission (futures / non-query work) ---------------------

    def offer_external(self, tenant_name: str,
                       epoch: Optional[int] = None
                       ) -> Optional[Callable[[], None]]:
        """Admit one unit of external work against this shard's capacity.

        Futures jobs routed through the shard router call this instead
        of :meth:`submit`: the unit is counted as offered, checked
        against the same shard-wide bound, and — when admitted — holds
        one slot of :attr:`load` until the returned release callable is
        invoked. Returns ``None`` when the unit is shed.
        """
        if epoch is not None and epoch != self.epoch:
            self.stale_rejections += 1
            raise StaleEpoch(
                f"shard {self.shard_id}: routed on epoch {epoch}, "
                f"fence is {self.epoch}")
        self.metrics.record_offered(tenant_name)
        if self.load >= self.max_pending:
            self.metrics.record_shed(tenant_name, self.env.now)
            if self._telemetry is not None:
                self._shed_counter.inc()
            return None
        self._external += 1

        def release() -> None:
            if self._external <= 0:
                raise RuntimeError("external release without admission")
            self._external -= 1
            # Close the conservation equation: an admitted external unit
            # leaves the offered count as a completion, never silently.
            done = getattr(self.metrics, "record_external_done", None)
            if done is not None:
                done(tenant_name, self.env.now)

        return release

    def _note_depth(self) -> None:
        depth = float(self._pending)
        self._depth_gauge.set(depth)
        self._depth_series.sample(self.env.now, depth)

    # -- queue access (scheduler side) -------------------------------------

    def pending(self, tenant_name: str) -> int:
        """Backlog depth of one tenant."""
        queue = self.queues.get(tenant_name)
        return len(queue) if queue is not None else 0

    @property
    def total_pending(self) -> int:
        """Backlog across all tenants (maintained incrementally; O(1))."""
        return self._pending

    @property
    def external_pending(self) -> int:
        """Externally admitted units currently holding capacity."""
        return self._external

    @property
    def load(self) -> int:
        """Queued plus external work counted against ``max_pending``."""
        return self._pending + self._external

    def backlogged(self) -> list[str]:
        """Tenants with a non-empty queue, in first-backlogged order.

        The scheduler iterates this instead of every registered tenant,
        so dispatch work scales with the backlog, not the tenant count.
        """
        return list(self._backlog)

    def head(self, tenant_name: str) -> Optional[QueryRequest]:
        """Oldest queued request of a tenant, without removing it."""
        queue = self.queues.get(tenant_name)
        return queue[0] if queue else None

    def pop(self, tenant_name: str) -> QueryRequest:
        """Remove and return the oldest queued request of a tenant."""
        queue = self.queues[tenant_name]
        request = queue.popleft()
        self._pending -= 1
        if not queue:
            del self._backlog[tenant_name]
            if tenant_name not in self.tenants:
                # Lazily materialized tenant drained: drop its queue so
                # resident state stays O(tenants with backlog).
                del self.queues[tenant_name]
        if self._telemetry is not None:
            self._note_depth()
        return request

    def drain_backlog(self) -> list[QueryRequest]:
        """Remove and return every queued request, in arrival order.

        Used when this shard is merged away or fails: the rebalancer
        re-homes the returned requests on the shards that took over the
        key ranges. Cost is O(backlog), independent of tenant count.
        """
        orphans: list[QueryRequest] = []
        while self._backlog:
            name = next(iter(self._backlog))
            queue = self.queues[name]
            while queue:
                orphans.append(self.pop(name))
        orphans.sort(key=lambda request: request.fifo_key)
        return orphans
