"""Multi-tenant query gateway: submission, quotas, admission control.

The gateway is the front door of the serving layer. Tenants register
with a priority class, a fair-share weight, a per-tenant concurrency
quota, and an SLO; submissions are admitted into a per-tenant queue or
shed when the tenant (or the gateway as a whole) is over its backlog
bound. The scheduler drains the queues; the gateway never runs queries
itself.
"""

from __future__ import annotations

import itertools
import math
from collections import deque
from dataclasses import dataclass
from typing import Any, Callable, Optional

from repro.serve.metrics import ServingMetrics
from repro.telemetry import get_recorder


@dataclass(frozen=True)
class Tenant:
    """One traffic source with its serving contract.

    ``priority`` orders priority-class scheduling (lower is more
    urgent); ``weight`` sets the tenant's share under weighted fair
    scheduling; ``max_concurrent`` caps the tenant's in-flight queries
    (its concurrency quota); ``max_queue_depth`` bounds its backlog —
    submissions beyond it are shed at admission.
    """

    name: str
    priority: int = 1
    weight: float = 1.0
    max_concurrent: int = 4
    max_queue_depth: float = math.inf
    slo_latency_s: float = math.inf

    def __post_init__(self) -> None:
        if self.weight <= 0:
            raise ValueError(f"weight must be positive, got {self.weight}")
        if self.max_concurrent <= 0:
            raise ValueError("max_concurrent must be positive")
        if self.max_queue_depth <= 0:
            raise ValueError("max_queue_depth must be positive")


@dataclass
class QueryRequest:
    """One admitted query waiting for (or holding) an execution slot."""

    tenant: str
    plan: Any
    submitted_at: float
    seq: int
    priority: int
    started_at: Optional[float] = None
    finished_at: Optional[float] = None

    @property
    def fifo_key(self) -> tuple[float, int]:
        """Global arrival order (ties broken by submission sequence)."""
        return (self.submitted_at, self.seq)


class QueryGateway:
    """Accepts tenant submissions; queues or sheds them.

    Admission control is two-level: a submission is shed when its
    tenant's queue is at ``max_queue_depth``, or when the gateway-wide
    backlog has reached ``max_pending`` (overload protection for the
    account as a whole). Admitted requests wait in per-tenant FIFO
    queues until a scheduler pops them.
    """

    def __init__(self, env, metrics: Optional[ServingMetrics] = None,
                 max_pending: float = math.inf) -> None:
        self.env = env
        self.metrics = metrics if metrics is not None else ServingMetrics()
        self.max_pending = max_pending
        self.tenants: dict[str, Tenant] = {}
        self.queues: dict[str, deque[QueryRequest]] = {}
        self._seq = itertools.count()
        #: Scheduler hook, called after every successful admission.
        self.on_submit: Optional[Callable[[], None]] = None
        recorder = get_recorder()
        self._telemetry = recorder if recorder.enabled else None
        if self._telemetry is not None:
            self._depth_gauge = recorder.gauge("gateway.queue_depth")
            self._depth_series = recorder.timeseries(
                "gateway.queue_depth", min_dt=0.001)
            self._shed_counter = recorder.counter("gateway.shed")

    # -- tenancy -----------------------------------------------------------

    def register(self, tenant: Tenant) -> Tenant:
        """Register a tenant (idempotent for the same name)."""
        self.tenants[tenant.name] = tenant
        self.queues.setdefault(tenant.name, deque())
        return tenant

    def tenant(self, name: str) -> Tenant:
        """Look up a registered tenant."""
        try:
            return self.tenants[name]
        except KeyError:
            raise KeyError(f"tenant {name!r} is not registered") from None

    # -- admission ---------------------------------------------------------

    def submit(self, tenant_name: str, plan: Any) -> Optional[QueryRequest]:
        """Offer one query; returns the queued request, or ``None`` if shed."""
        tenant = self.tenant(tenant_name)
        self.metrics.record_offered(tenant_name)
        queue = self.queues[tenant_name]
        if (len(queue) >= tenant.max_queue_depth
                or self.total_pending >= self.max_pending):
            self.metrics.record_shed(tenant_name, self.env.now)
            if self._telemetry is not None:
                self._shed_counter.inc()
                self._telemetry.event(
                    self.env.now, "gateway.shed", category="serving",
                    tenant=tenant_name, queue_depth=len(queue),
                    total_pending=self.total_pending)
            return None
        request = QueryRequest(
            tenant=tenant_name, plan=plan, submitted_at=self.env.now,
            seq=next(self._seq), priority=tenant.priority)
        queue.append(request)
        if self._telemetry is not None:
            self._note_depth()
        if self.on_submit is not None:
            self.on_submit()
        return request

    def _note_depth(self) -> None:
        depth = float(self.total_pending)
        self._depth_gauge.set(depth)
        self._depth_series.sample(self.env.now, depth)

    # -- queue access (scheduler side) -------------------------------------

    def pending(self, tenant_name: str) -> int:
        """Backlog depth of one tenant."""
        return len(self.queues[tenant_name])

    @property
    def total_pending(self) -> int:
        """Backlog across all tenants."""
        return sum(len(queue) for queue in self.queues.values())

    def head(self, tenant_name: str) -> Optional[QueryRequest]:
        """Oldest queued request of a tenant, without removing it."""
        queue = self.queues[tenant_name]
        return queue[0] if queue else None

    def pop(self, tenant_name: str) -> QueryRequest:
        """Remove and return the oldest queued request of a tenant."""
        request = self.queues[tenant_name].popleft()
        if self._telemetry is not None:
            self._note_depth()
        return request
