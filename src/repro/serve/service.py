"""End-to-end serving runs: Poisson tenant mixes over the platform.

Wires a :class:`~repro.serve.gateway.QueryGateway`, a
:class:`~repro.serve.scheduler.QueryScheduler`, and (optionally) a
:class:`~repro.serve.warm_pool.WarmPoolManager` onto one simulated
region, generates per-tenant Poisson query streams, and reduces the run
to per-tenant :class:`~repro.serve.metrics.TenantReport` rows. With a
fixed seed the whole run — arrivals, scheduling, platform timing — is
deterministic, so policies can be compared on the *same* overload trace.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Optional

from repro.core.context import CloudSim
from repro.core.plotter import format_table
from repro.serve.gateway import QueryGateway, Tenant
from repro.serve.metrics import REPORT_HEADERS, ServingMetrics, TenantReport
from repro.serve.scheduler import (
    ConcurrencyGovernor,
    QueryScheduler,
    make_policy,
)
from repro.serve.warm_pool import WarmPoolManager, WarmPoolStats
from repro.telemetry.export import canonical_json
from repro.workloads.suite import SuiteSetup, build_plan, setup_engine
from repro.workloads.traffic import poisson_arrivals


@dataclass
class TenantWorkload:
    """One tenant's traffic description for a serving run."""

    tenant: Tenant
    query: str = "tpch-q6"
    rate_per_hour: float = 600.0
    plan_kwargs: dict = field(default_factory=dict)


def default_tenant_mix(rate_scale: float = 1.0) -> list[TenantWorkload]:
    """The canonical 3-tenant mix used by the CLI, example, and benchmark.

    * ``interactive`` — low-rate, latency-sensitive dashboard queries
      with a tight SLO, high fair-share weight, top priority class;
    * ``analytics`` — mid-rate ad-hoc analyst queries;
    * ``batch`` — a high-rate background ETL stream with a shallow
      queue bound (it sheds first under overload) and minimal weight.
    """
    if rate_scale <= 0:
        raise ValueError("rate_scale must be positive")
    return [
        TenantWorkload(
            tenant=Tenant(name="interactive", priority=0, weight=8.0,
                          max_concurrent=4, max_queue_depth=16,
                          slo_latency_s=20.0),
            query="tpch-q6", rate_per_hour=120.0 * rate_scale,
            plan_kwargs={"scan_fragments": 2}),
        TenantWorkload(
            tenant=Tenant(name="analytics", priority=1, weight=2.0,
                          max_concurrent=3, max_queue_depth=24,
                          slo_latency_s=60.0),
            query="tpch-q1", rate_per_hour=60.0 * rate_scale,
            plan_kwargs={"scan_fragments": 2}),
        TenantWorkload(
            tenant=Tenant(name="batch", priority=2, weight=1.0,
                          max_concurrent=2, max_queue_depth=12,
                          slo_latency_s=300.0),
            query="tpch-q6", rate_per_hour=360.0 * rate_scale,
            plan_kwargs={"scan_fragments": 2}),
    ]


@dataclass
class ServingOutcome:
    """Everything measured over one serving run."""

    policy: str
    window_s: float
    seed: int
    reports: dict[str, TenantReport]
    governor_cap: Optional[int]
    peak_concurrent_queries: int
    warm_stats: Optional[WarmPoolStats] = None
    warm_cost_usd: float = 0.0
    #: Optional SLO-engine report (error budgets, burn-rate alerts)
    #: attached when the run was given an ``slo_policy``. ``None`` — the
    #: default — keeps :meth:`summary` and :meth:`to_json` byte-stable
    #: for existing runs and goldens.
    slo: Optional[dict] = None

    @property
    def total_offered(self) -> int:
        return sum(r.offered for r in self.reports.values())

    @property
    def total_completed(self) -> int:
        return sum(r.completed for r in self.reports.values())

    @property
    def total_shed(self) -> int:
        return sum(r.shed for r in self.reports.values())

    @property
    def total_failed(self) -> int:
        """Queries that started executing but errored out."""
        return sum(r.failed for r in self.reports.values())

    @property
    def total_recovered(self) -> int:
        """Served queries that needed at least one retry or hedge."""
        return sum(r.recovered for r in self.reports.values())

    @property
    def total_cost_usd(self) -> float:
        """Query-attributed cost plus warm-pool keep-alive spend."""
        return (sum(r.cost_usd for r in self.reports.values())
                + self.warm_cost_usd)

    def format_report(self) -> str:
        """Paper-style text table of the per-tenant serving metrics."""
        rows = [self.reports[name].row() for name in self.reports]
        title = (f"Serving report — policy={self.policy}, "
                 f"window={self.window_s:.0f}s, seed={self.seed}")
        table = format_table(REPORT_HEADERS, rows, title=title)
        lines = [table,
                 f"queries: {self.total_completed}/{self.total_offered} "
                 f"served, {self.total_shed} shed, {self.total_failed} "
                 f"failed, {self.total_recovered} recovered; "
                 f"peak concurrency "
                 f"{self.peak_concurrent_queries}"
                 + (f"/{self.governor_cap}" if self.governor_cap else ""),
                 f"total cost ${self.total_cost_usd:.4f}"
                 + (f" (incl. ${self.warm_cost_usd:.4f} keep-alive, "
                    f"hit rate {self.warm_stats.hit_rate * 100:.0f}%)"
                    if self.warm_stats else "")]
        return "\n".join(lines)

    def summary(self) -> dict:
        """Flat metric dict (stable keys) for tests and JSON dumps."""
        out = {"policy": self.policy, "offered": self.total_offered,
               "completed": self.total_completed, "shed": self.total_shed,
               "failed": self.total_failed,
               "recovered": self.total_recovered,
               "cost_usd": round(self.total_cost_usd, 10),
               "peak_concurrency": self.peak_concurrent_queries}
        for name, report in self.reports.items():
            out[f"{name}.p50"] = round(report.latency_p50, 9)
            out[f"{name}.p95"] = round(report.latency_p95, 9)
            out[f"{name}.p99"] = round(report.latency_p99, 9)
            out[f"{name}.queue_wait"] = round(report.mean_queue_wait, 9)
            out[f"{name}.slo"] = round(report.slo_attainment, 9)
            out[f"{name}.shed"] = report.shed
            out[f"{name}.failed"] = report.failed
            out[f"{name}.recovered"] = report.recovered
        if self.slo is not None:
            out["slo"] = self.slo
        return out

    def to_json(self) -> str:
        """Canonical JSON artifact (byte-stable for a fixed seed+mix).

        Uses the shared :func:`repro.telemetry.export.canonical_json`
        writer, so serving artifacts follow the same sorted-key,
        rounded-float convention as chaos resilience reports and
        telemetry snapshots.
        """
        payload = dict(self.summary())
        payload["window_s"] = self.window_s
        payload["seed"] = self.seed
        return canonical_json(payload)


def run_serving_workload(workloads: list[TenantWorkload],
                         policy: str = "fifo",
                         window_s: float = 600.0,
                         seed: int = 0,
                         setup: Optional[SuiteSetup] = None,
                         account_quota: int = 1_000,
                         fragments_per_query: int = 4,
                         max_concurrent_queries: Optional[int] = None,
                         warm_targets: Optional[dict[str, int]] = None,
                         warm_interval_s: float = 240.0,
                         fault_plan=None,
                         recovery=None,
                         slo_policy=None) -> ServingOutcome:
    """Serve a multi-tenant Poisson mix on the simulated platform.

    Each tenant's arrivals come from its own named RNG stream, so the
    trace depends only on ``seed`` and the mix — not on the scheduling
    policy — and two runs that differ only in ``policy`` see identical
    overload.

    ``fault_plan`` (a :class:`~repro.chaos.plan.FaultPlan` or plan name)
    installs a chaos injector over the run; ``recovery`` configures the
    engine's task-level fault tolerance.

    ``slo_policy`` (a :class:`~repro.obs.slo.SLOPolicy`) evaluates the
    run's completion/shed/failure timeline offline through the SLO
    engine — per-tenant-class scopes plus the fleet roll-up — and
    attaches the resulting error-budget/burn-rate report as
    ``outcome.slo``. Purely post-hoc: the run itself is unchanged.
    """
    if not workloads:
        raise ValueError("need at least one tenant workload")
    sim = CloudSim(seed=seed, account_quota=account_quota)
    queries = tuple(dict.fromkeys(w.query for w in workloads))
    setup = setup or SuiteSetup(queries=queries, lineitem_partitions=3,
                                orders_partitions=2,
                                clickstreams_partitions=2,
                                rows_per_partition=96)
    engine = setup_engine(sim, setup, recovery=recovery)
    if fault_plan is not None:
        from repro.chaos.injector import FaultInjector
        from repro.chaos.plan import get_plan
        if isinstance(fault_plan, str):
            fault_plan = get_plan(fault_plan)
        injector = FaultInjector(fault_plan, rng=sim.rng)
        injector.install(platform=sim.platform,
                         services=list(engine.storage.values()))
    metrics = ServingMetrics()
    gateway = QueryGateway(sim.env, metrics)
    plans = {}
    traces = {}
    for workload in workloads:
        name = workload.tenant.name
        gateway.register(workload.tenant)
        plans[name] = build_plan(workload.query, **workload.plan_kwargs)
        traces[name] = poisson_arrivals(
            sim.rng.stream(f"serve.{name}"), workload.rate_per_hour,
            window_s)
    if max_concurrent_queries is not None:
        governor = ConcurrencyGovernor(max_concurrent_queries)
    else:
        governor = ConcurrencyGovernor.for_account(account_quota,
                                                   fragments_per_query)
    scheduler = QueryScheduler(sim.env, engine, gateway,
                               make_policy(policy), governor, metrics)
    manager = None
    if warm_targets:
        manager = WarmPoolManager(sim.env, sim.platform, warm_targets,
                                  interval_s=warm_interval_s)

    def submit_at(env, name, offset):
        yield env.timeout(offset)
        gateway.submit(name, plans[name])

    def scenario(env):
        scheduler.start()
        warm_process = (env.process(manager.run(window_s))
                        if manager is not None else None)
        submissions = [env.process(submit_at(env, name, offset))
                       for name, offsets in traces.items()
                       for offset in offsets]
        for process in submissions:
            yield process
        yield scheduler.drained()
        if warm_process is not None:
            yield warm_process
        if env.now < window_s:
            yield env.timeout(window_s - env.now)

    sim.run(sim.env.process(scenario(sim.env)))
    reports = {
        w.tenant.name: metrics.tenant_report(w.tenant.name,
                                             w.tenant.slo_latency_s)
        for w in workloads}
    slo = None
    if slo_policy is not None:
        from repro.obs.slo import evaluate_offline
        events = []
        for tenant, records in sorted(metrics.completed.items()):
            for record in records:
                good = slo_policy.is_good(record.latency)
                events.append((record.finished_at, f"tenant:{tenant}", good))
                events.append((record.finished_at, "fleet", good))
        for kind in (metrics.shed, metrics.failed):
            for tenant, stamps in sorted(kind.items()):
                for at in stamps:
                    events.append((at, f"tenant:{tenant}", False))
                    events.append((at, "fleet", False))
        slo = evaluate_offline(slo_policy, events, window_s)
    return ServingOutcome(
        policy=policy, window_s=window_s, seed=seed, reports=reports,
        governor_cap=governor.max_queries,
        peak_concurrent_queries=governor.peak_in_flight,
        warm_stats=manager.stats if manager is not None else None,
        warm_cost_usd=manager.ping_cost_usd() if manager is not None
        else 0.0,
        slo=slo)
