"""Multi-tenant query serving layer (toward the ROADMAP north star).

The paper evaluates Skyrise one query at a time; its economic analysis
(Section 5.2) only bites under sustained multi-query traffic, where
concurrent queries contend for the account-level Lambda concurrency
quota. This package adds the missing serving tier between workload
generators and :class:`~repro.engine.SkyriseEngine`:

* :mod:`repro.serve.gateway` — multi-tenant submission with per-tenant
  concurrency quotas and admission control (queue or shed);
* :mod:`repro.serve.scheduler` — a simulated scheduler process with
  pluggable dispatch policies (FIFO, priority classes, weighted fair
  share) and a global concurrency governor that respects the account
  quota modeled in :mod:`repro.faas.platform`;
* :mod:`repro.serve.warm_pool` — keep-alive pings that hold sandboxes
  hot between arrivals, trading ping cost against coldstart latency;
* :mod:`repro.serve.metrics` — per-tenant queue wait, latency
  percentiles, SLO attainment, shed rate, and dollar cost;
* :mod:`repro.serve.service` — end-to-end serving runs of Poisson
  tenant mixes over the simulated platform.
"""

from repro.serve.gateway import QueryGateway, QueryRequest, Tenant
from repro.serve.metrics import (
    CompletedQuery,
    ServingMetrics,
    TenantReport,
    cost_per_query,
)
from repro.serve.scheduler import (
    POLICIES,
    ConcurrencyGovernor,
    FairSharePolicy,
    FifoPolicy,
    PriorityPolicy,
    QueryScheduler,
    make_policy,
)
from repro.serve.service import (
    ServingOutcome,
    TenantWorkload,
    default_tenant_mix,
    run_serving_workload,
)
from repro.serve.warm_pool import WarmPoolManager, WarmPoolStats

__all__ = [
    "POLICIES",
    "CompletedQuery",
    "ConcurrencyGovernor",
    "FairSharePolicy",
    "FifoPolicy",
    "PriorityPolicy",
    "QueryGateway",
    "QueryRequest",
    "QueryScheduler",
    "ServingMetrics",
    "ServingOutcome",
    "Tenant",
    "TenantReport",
    "TenantWorkload",
    "WarmPoolManager",
    "WarmPoolStats",
    "cost_per_query",
    "default_tenant_mix",
    "make_policy",
    "run_serving_workload",
]
