"""The serving scheduler: dispatch policies and concurrency governance.

A :class:`QueryScheduler` runs as a simulation process. Whenever a
query arrives or finishes it tries to dispatch: a pluggable policy
picks the next tenant among those that are *eligible* (non-empty queue,
in-flight below the tenant's concurrency quota), and a global
:class:`ConcurrencyGovernor` bounds how many queries run at once so the
aggregate worker fan-out stays inside the account-level Lambda
concurrency quota modeled by :class:`~repro.faas.platform.LambdaPlatform`.

Three policies are provided:

* **FIFO** — global arrival order, tenant-blind;
* **priority** — strict priority classes (lower class first), FIFO
  within a class;
* **fair** — weighted fair sharing: each dispatch charges the tenant
  ``1 / weight`` units of virtual service; the tenant with the least
  normalized service goes next, so a heavy tenant's backlog cannot
  starve a light high-weight tenant.
"""

from __future__ import annotations

from typing import Optional

from repro.serve.gateway import QueryGateway, QueryRequest
from repro.serve.metrics import CompletedQuery, ServingMetrics


class SchedulingPolicy:
    """Chooses which eligible tenant's head-of-queue runs next."""

    name = "base"

    def select(self, gateway: QueryGateway,
               eligible: list[str]) -> Optional[str]:
        """Return the tenant to dispatch from, or ``None`` to idle."""
        raise NotImplementedError

    def note_dispatch(self, gateway: QueryGateway,
                      request: QueryRequest) -> None:
        """Policy hook invoked after a request is dispatched."""


class FifoPolicy(SchedulingPolicy):
    """Global first-come-first-served across all tenants."""

    name = "fifo"

    def select(self, gateway, eligible):
        heads = [gateway.head(name) for name in eligible]
        if not heads:
            return None
        return min(heads, key=lambda req: req.fifo_key).tenant


class PriorityPolicy(SchedulingPolicy):
    """Strict priority classes; FIFO within a class."""

    name = "priority"

    def select(self, gateway, eligible):
        heads = [gateway.head(name) for name in eligible]
        if not heads:
            return None
        return min(heads,
                   key=lambda req: (req.priority,) + req.fifo_key).tenant


class FairSharePolicy(SchedulingPolicy):
    """Weighted fair sharing over dispatch counts.

    Tracks per-tenant virtual service (dispatches divided by weight)
    and always serves the backlogged tenant with the least of it —
    start-time fair queueing with unit-sized jobs. New or long-idle
    tenants join at the current minimum so they cannot claim an
    unbounded burst of stored credit.
    """

    name = "fair"

    def __init__(self) -> None:
        self._service: dict[str, float] = {}

    def select(self, gateway, eligible):
        if not eligible:
            return None
        floor = min(self._service.values()) if self._service else 0.0
        for name in eligible:
            self._service.setdefault(name, floor)
        return min(eligible,
                   key=lambda name: (self._service[name],
                                     gateway.head(name).fifo_key))

    def note_dispatch(self, gateway, request):
        weight = gateway.tenant(request.tenant).weight
        floor = min(self._service.values()) if self._service else 0.0
        current = self._service.get(request.tenant, floor)
        self._service[request.tenant] = current + 1.0 / weight


POLICIES = {
    "fifo": FifoPolicy,
    "priority": PriorityPolicy,
    "fair": FairSharePolicy,
}


def make_policy(name: str) -> SchedulingPolicy:
    """Instantiate a policy by its registry name."""
    try:
        return POLICIES[name]()
    except KeyError:
        raise KeyError(f"unknown policy {name!r}; known: "
                       f"{sorted(POLICIES)}") from None


class ConcurrencyGovernor:
    """Caps concurrently running queries for the whole account.

    Each query fans out to roughly ``fragments_per_query`` concurrent
    function invocations at its widest stage, so admitting more than
    ``account_quota / fragments_per_query`` queries would push the
    platform's admission service into throttling (the 1,000-default
    quota of Section 2.1). The governor keeps query admission ahead of
    that cliff instead of letting every query degrade.
    """

    def __init__(self, max_queries: Optional[int] = None) -> None:
        if max_queries is not None and max_queries <= 0:
            raise ValueError("max_queries must be positive")
        self.max_queries = max_queries
        self.in_flight = 0
        self.peak_in_flight = 0

    @classmethod
    def for_account(cls, account_quota: int,
                    fragments_per_query: int) -> "ConcurrencyGovernor":
        """Derive the query cap from the account quota and plan width."""
        if account_quota <= 0 or fragments_per_query <= 0:
            raise ValueError("quota and fragment width must be positive")
        return cls(max(1, account_quota // fragments_per_query))

    def has_slot(self) -> bool:
        """Whether one more query may start now."""
        return (self.max_queries is None
                or self.in_flight < self.max_queries)

    def acquire(self) -> None:
        """Take one query slot (caller must have checked :meth:`has_slot`)."""
        if not self.has_slot():
            raise RuntimeError("governor has no free slot")
        self.in_flight += 1
        self.peak_in_flight = max(self.peak_in_flight, self.in_flight)

    def release(self) -> None:
        """Return one query slot."""
        if self.in_flight <= 0:
            raise RuntimeError("release without acquire")
        self.in_flight -= 1


class QueryScheduler:
    """Drains the gateway onto an engine under policy and governor."""

    def __init__(self, env, engine, gateway: QueryGateway,
                 policy: SchedulingPolicy,
                 governor: Optional[ConcurrencyGovernor] = None,
                 metrics: Optional[ServingMetrics] = None) -> None:
        self.env = env
        self.engine = engine
        self.gateway = gateway
        self.policy = policy
        self.governor = governor if governor is not None \
            else ConcurrencyGovernor()
        self.metrics = metrics if metrics is not None else gateway.metrics
        self.inflight: dict[str, int] = {}
        self.dispatched = 0
        self.process = None
        self._wake = None
        self._drain_waiters: list = []
        gateway.on_submit = self._notify

    # -- lifecycle ---------------------------------------------------------

    def start(self):
        """Start the scheduler loop; returns its process."""
        if self.process is None:
            self.process = self.env.process(self._loop(), name="scheduler")
        return self.process

    @property
    def total_inflight(self) -> int:
        """Queries currently executing."""
        return sum(self.inflight.values())

    def drained(self):
        """Event that fires when no query is queued or running."""
        event = self.env.event()
        if self.gateway.total_pending == 0 and self.total_inflight == 0:
            event.succeed()
        else:
            self._drain_waiters.append(event)
        return event

    # -- dispatch ----------------------------------------------------------

    def _eligible(self) -> list[str]:
        # Scan only tenants with backlog (insertion-ordered), so one
        # dispatch round costs O(backlogged tenants) — not O(all
        # registered tenants). The eligible *set* is unchanged: a
        # tenant is dispatchable iff it has queued work and headroom
        # under its concurrency quota.
        eligible = []
        for name in self.gateway.backlogged():
            tenant = self.gateway.tenant(name)
            if self.inflight.get(name, 0) < tenant.max_concurrent:
                eligible.append(name)
        return eligible

    def _loop(self):
        while True:
            while self.governor.has_slot():
                choice = self.policy.select(self.gateway, self._eligible())
                if choice is None:
                    break
                request = self.gateway.pop(choice)
                self.policy.note_dispatch(self.gateway, request)
                self.governor.acquire()
                self.inflight[choice] = self.inflight.get(choice, 0) + 1
                self.dispatched += 1
                self.env.process(self._serve_one(request),
                                 name=f"serve-{choice}-{request.seq}")
            self._wake = self.env.event()
            yield self._wake

    def _notify(self) -> None:
        if self._wake is not None and not self._wake.triggered:
            self._wake.succeed()

    def _serve_one(self, request: QueryRequest):
        request.started_at = self.env.now
        failed = False
        try:
            result = yield from self.engine.run_query(request.plan)
        except Exception:  # noqa: BLE001 - counted, serving continues
            # An execution failure (e.g. a fragment that exhausted its
            # retries under faults) must not take the scheduler down:
            # record it and keep serving. Failed is distinct from shed —
            # this query was admitted and started.
            failed = True
            barriers = getattr(self.engine, "barriers", None)
            if barriers is not None:
                barriers.clear(getattr(request.plan, "query_id", "?"))
        finally:
            request.finished_at = self.env.now
            self.inflight[request.tenant] -= 1
            self.governor.release()
            self._notify()
            if (self.gateway.total_pending == 0
                    and self.total_inflight == 0):
                waiters, self._drain_waiters = self._drain_waiters, []
                for event in waiters:
                    event.succeed()
        if failed:
            self.metrics.record_failed(request.tenant, request.finished_at)
            return
        self.metrics.record_completion(CompletedQuery(
            tenant=request.tenant,
            query_id=getattr(result, "query_id",
                             getattr(request.plan, "query_id", "?")),
            submitted_at=request.submitted_at,
            started_at=request.started_at,
            finished_at=request.finished_at,
            runtime=getattr(result, "runtime",
                            request.finished_at - request.started_at),
            cost_usd=getattr(result, "cost_cents", 0.0) / 100.0,
            retries=getattr(result, "retries", 0),
            hedges=getattr(result, "hedges", 0)))
