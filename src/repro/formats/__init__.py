"""Columnar file format (Parquet-like) and in-memory record batches.

The Skyrise engine reads base tables stored as columnar files on object
storage (the paper uses Parquet with ZSTD; we implement an equivalent
container with zlib): row groups of column chunks, a footer with schema
and per-chunk min/max zone maps, projection pushdown (read only requested
columns) and selection pushdown (skip row groups whose zone maps cannot
match a predicate).
"""

from repro.formats.schema import DataType, Field, Schema
from repro.formats.batch import RecordBatch
from repro.formats.columnar import (
    ColumnarFile,
    FileMetadata,
    read_file,
    read_metadata,
    write_file,
)

__all__ = [
    "ColumnarFile",
    "DataType",
    "Field",
    "FileMetadata",
    "RecordBatch",
    "Schema",
    "read_file",
    "read_metadata",
    "write_file",
]
