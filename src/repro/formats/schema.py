"""Logical schema: data types and fields."""

from __future__ import annotations

import enum
from dataclasses import dataclass
from typing import Iterable

import numpy as np


class DataType(enum.Enum):
    """Logical column types supported by the engine."""

    INT64 = "int64"
    FLOAT64 = "float64"
    STRING = "string"
    #: Dates are stored as int32 days since 1970-01-01.
    DATE = "date"

    @property
    def numpy_dtype(self) -> np.dtype:
        """The numpy dtype backing this logical type."""
        return _NUMPY_DTYPES[self]

    @property
    def fixed_width(self) -> int | None:
        """Bytes per value for fixed-width types, ``None`` for strings."""
        return _FIXED_WIDTHS[self]


#: Per-type constants, looked up by the properties above: both are hit
#: on every column of every batch, so the dtype objects are built once.
_NUMPY_DTYPES = {
    DataType.INT64: np.dtype(np.int64),
    DataType.FLOAT64: np.dtype(np.float64),
    DataType.DATE: np.dtype(np.int32),
    DataType.STRING: np.dtype(object),
}
_FIXED_WIDTHS = {
    dtype: (None if dtype is DataType.STRING
            else _NUMPY_DTYPES[dtype].itemsize)
    for dtype in DataType
}


@dataclass(frozen=True)
class Field:
    """A named, typed column."""

    name: str
    dtype: DataType

    def __post_init__(self) -> None:
        if not self.name:
            raise ValueError("field name must be non-empty")


class Schema:
    """An ordered collection of fields with name-based lookup."""

    def __init__(self, fields: Iterable[Field]) -> None:
        self.fields = tuple(fields)
        self._index = {field.name: i for i, field in enumerate(self.fields)}
        if len(self._index) != len(self.fields):
            raise ValueError("duplicate field names in schema")

    def __len__(self) -> int:
        return len(self.fields)

    def __iter__(self):
        return iter(self.fields)

    def __contains__(self, name: str) -> bool:
        return name in self._index

    def __eq__(self, other: object) -> bool:
        return isinstance(other, Schema) and self.fields == other.fields

    def field(self, name: str) -> Field:
        """Look up a field by name."""
        try:
            return self.fields[self._index[name]]
        except KeyError:
            raise KeyError(f"no field {name!r}; have {self.names()}") from None

    def index_of(self, name: str) -> int:
        """Positional index of a field."""
        try:
            return self._index[name]
        except KeyError:
            raise KeyError(f"no field {name!r}; have {self.names()}") from None

    def names(self) -> list[str]:
        """All field names, in order."""
        return [field.name for field in self.fields]

    def select(self, names: Iterable[str]) -> "Schema":
        """A new schema with only the named fields, in the given order."""
        return Schema([self.field(name) for name in names])

    def to_dict(self) -> list[dict[str, str]]:
        """JSON-serializable schema description."""
        return [{"name": f.name, "type": f.dtype.value} for f in self.fields]

    @classmethod
    def from_dict(cls, data: list[dict[str, str]]) -> "Schema":
        """Rebuild a schema from :meth:`to_dict` output."""
        return cls([Field(item["name"], DataType(item["type"]))
                    for item in data])

    def __repr__(self) -> str:
        inner = ", ".join(f"{f.name}:{f.dtype.value}" for f in self.fields)
        return f"Schema({inner})"
