"""In-memory record batches: the engine's vectorized unit of work.

A :class:`RecordBatch` is a struct-of-arrays over numpy. Batches carry a
``logical_bytes`` annotation: the byte volume this batch *represents* in
the modelled dataset (which may be scaled up relative to the physically
materialized rows — see the dataset scale knob in DESIGN.md). Operators
propagate the annotation proportionally so that simulated I/O and CPU
times reflect the modelled scale.
"""

from __future__ import annotations

from typing import Iterable, Mapping, Optional

import numpy as np

from repro.formats.schema import DataType, Field, Schema


class RecordBatch:
    """A set of equally long columns with a schema."""

    def __init__(self, schema: Schema, columns: Mapping[str, np.ndarray],
                 logical_bytes: Optional[float] = None) -> None:
        self.schema = schema
        self.columns: dict[str, np.ndarray] = {}
        length = None
        for field in schema:
            if field.name not in columns:
                raise ValueError(f"missing column {field.name!r}")
            array = np.asarray(columns[field.name])
            if length is None:
                length = len(array)
            elif len(array) != length:
                raise ValueError(
                    f"column {field.name!r} has {len(array)} rows, "
                    f"expected {length}")
            self.columns[field.name] = array
        self._length = length if length is not None else 0
        self._physical: Optional[int] = None
        self.logical_bytes = (float(logical_bytes) if logical_bytes is not None
                              else float(self.physical_bytes))

    def __len__(self) -> int:
        return self._length

    @property
    def num_rows(self) -> int:
        """Number of rows in the batch."""
        return self._length

    @property
    def physical_bytes(self) -> int:
        """Actual in-memory footprint of the column data.

        Computed once and cached: column arrays are never replaced after
        construction (operators build new batches instead), and the
        string measurement walks every value.
        """
        if self._physical is not None:
            return self._physical
        total = 0
        for field in self.schema:
            array = self.columns[field.name]
            if field.dtype is DataType.STRING:
                total += (sum(len(str(v)) for v in array.tolist())
                          + 4 * len(array))
            else:
                total += array.nbytes
        self._physical = total
        return total

    def column(self, name: str) -> np.ndarray:
        """The column array for ``name``."""
        try:
            return self.columns[name]
        except KeyError:
            raise KeyError(f"no column {name!r}; have "
                           f"{self.schema.names()}") from None

    def select(self, names: Iterable[str]) -> "RecordBatch":
        """Project to the named columns, scaling logical bytes by width."""
        names = list(names)
        sub_schema = self.schema.select(names)
        fraction = _width_fraction(self.schema, sub_schema)
        return RecordBatch(sub_schema,
                           {name: self.columns[name] for name in names},
                           logical_bytes=self.logical_bytes * fraction)

    def take(self, mask_or_indices: np.ndarray) -> "RecordBatch":
        """Row subset by boolean mask or index array, scaling logical bytes."""
        out = {name: array[mask_or_indices]
               for name, array in self.columns.items()}
        first = next(iter(out.values())) if out else np.empty(0)
        out_rows = len(first)
        ratio = out_rows / self._length if self._length else 0.0
        return RecordBatch(self.schema, out,
                           logical_bytes=self.logical_bytes * ratio)

    def with_columns(self, extra: Mapping[str, tuple[DataType, np.ndarray]]
                     ) -> "RecordBatch":
        """Append computed columns (same row count)."""
        fields = list(self.schema.fields)
        columns = dict(self.columns)
        for name, (dtype, array) in extra.items():
            if name in columns:
                raise ValueError(f"column {name!r} already exists")
            fields.append(Field(name, dtype))
            columns[name] = np.asarray(array)
        return RecordBatch(Schema(fields), columns,
                           logical_bytes=self.logical_bytes)

    @classmethod
    def empty(cls, schema: Schema) -> "RecordBatch":
        """A zero-row batch with the given schema."""
        columns = {field.name: np.empty(0, dtype=field.dtype.numpy_dtype)
                   for field in schema}
        return cls(schema, columns, logical_bytes=0.0)

    @classmethod
    def concat(cls, batches: list["RecordBatch"]) -> "RecordBatch":
        """Concatenate batches with identical schemas."""
        if not batches:
            raise ValueError("cannot concat zero batches")
        schema = batches[0].schema
        for batch in batches[1:]:
            if batch.schema != schema:
                raise ValueError("schema mismatch in concat")
        columns = {
            field.name: np.concatenate([b.columns[field.name]
                                        for b in batches])
            for field in schema
        }
        logical = sum(batch.logical_bytes for batch in batches)
        return cls(schema, columns, logical_bytes=logical)

    def to_pydict(self) -> dict[str, list]:
        """Plain-Python column dictionary (tests and debugging)."""
        return {name: list(array) for name, array in self.columns.items()}

    def __repr__(self) -> str:
        return (f"<RecordBatch rows={self._length} "
                f"cols={self.schema.names()} "
                f"logical={self.logical_bytes:.0f}B>")


def _width_fraction(full: Schema, sub: Schema) -> float:
    """Approximate byte-width fraction of a column subset."""

    def width(schema: Schema) -> float:
        total = 0.0
        for field in schema:
            fixed = field.dtype.fixed_width
            total += fixed if fixed is not None else 16.0  # avg string
        return total

    full_width = width(full)
    return width(sub) / full_width if full_width else 1.0
