"""The columnar file container.

Layout (all integers little-endian):

* magic ``SKYR`` (4 bytes)
* row groups, each a sequence of zlib-compressed column chunks
* footer: JSON metadata (schema, row-group boundaries, per-chunk offsets,
  sizes, encodings, and min/max zone maps)
* footer length (8 bytes) + magic ``SKYR``

Readers fetch the footer first, then only the chunks their projection
needs, skipping row groups whose zone maps cannot satisfy the predicate
(projection and selection pushdown, Section 3.2).
"""

from __future__ import annotations

import hashlib
import json
import struct
import zlib
from collections import OrderedDict
from dataclasses import dataclass
from typing import Any, Callable, Iterable, Optional

import numpy as np

from repro.formats.batch import RecordBatch
from repro.formats.schema import DataType, Schema

MAGIC = b"SKYR"
DEFAULT_ROW_GROUP_SIZE = 64 * 1024


@dataclass
class ChunkMeta:
    """Location and statistics of one column chunk."""

    column: str
    offset: int
    size: int
    encoding: str
    rows: int
    min_value: Optional[float | str]
    max_value: Optional[float | str]

    def to_dict(self) -> dict:
        return {
            "column": self.column, "offset": self.offset, "size": self.size,
            "encoding": self.encoding, "rows": self.rows,
            "min": self.min_value, "max": self.max_value,
        }

    @classmethod
    def from_dict(cls, data: dict) -> "ChunkMeta":
        return cls(column=data["column"], offset=data["offset"],
                   size=data["size"], encoding=data["encoding"],
                   rows=data["rows"], min_value=data["min"],
                   max_value=data["max"])


@dataclass
class FileMetadata:
    """Footer contents: schema plus chunk index."""

    schema: Schema
    num_rows: int
    row_groups: list[list[ChunkMeta]]

    def to_json(self) -> bytes:
        payload = {
            "schema": self.schema.to_dict(),
            "num_rows": self.num_rows,
            "row_groups": [[chunk.to_dict() for chunk in group]
                           for group in self.row_groups],
        }
        # Simulated wire format, not an artifact: the compact footer's
        # byte size models S3 object sizes, and canonical_json's indent
        # would inflate every simulated transfer.
        return json.dumps(payload).encode("utf-8")  # repro-lint: disable=ARCH002 compact wire format sizes simulated bytes

    @classmethod
    def from_json(cls, raw: bytes) -> "FileMetadata":
        payload = json.loads(raw.decode("utf-8"))
        return cls(
            schema=Schema.from_dict(payload["schema"]),
            num_rows=payload["num_rows"],
            row_groups=[[ChunkMeta.from_dict(chunk) for chunk in group]
                        for group in payload["row_groups"]])


#: Use dictionary encoding when distinct values cover at most this
#: fraction of a string chunk (low cardinality, e.g. flags and modes).
DICTIONARY_CARDINALITY_FRACTION = 0.5


def _encode_column(array: np.ndarray, dtype: DataType) -> tuple[bytes, str]:
    """Compress one column chunk; returns (payload, encoding tag).

    Strings choose between plain UTF-8 and dictionary encoding: columns
    like ``l_returnflag`` or ``l_shipmode`` hold a handful of distinct
    values, so storing (dictionary + per-row codes) beats repeating the
    text — the usual Parquet trade-off.
    """
    if dtype is DataType.STRING:
        values = [str(v) for v in array]
        uniques = sorted(set(values))
        if values and len(uniques) <= max(
                1, int(len(values) * DICTIONARY_CARDINALITY_FRACTION)):
            index = {value: code for code, value in enumerate(uniques)}
            codes = np.array([index[v] for v in values], dtype=np.int32)
            dictionary = "\x00".join(uniques).encode("utf-8")
            payload = (struct.pack("<I", len(dictionary)) + dictionary
                       + codes.tobytes())
            return zlib.compress(payload, level=1), "dict-zlib"
        blob = "\x00".join(values).encode("utf-8")
        return zlib.compress(blob, level=1), "utf8-zlib"
    contiguous = np.ascontiguousarray(array.astype(dtype.numpy_dtype))
    return zlib.compress(contiguous.tobytes(), level=1), "raw-zlib"


def _decode_column(payload: bytes, encoding: str, dtype: DataType,
                   rows: int) -> np.ndarray:
    """Invert :func:`_encode_column`."""
    raw = zlib.decompress(payload)
    if encoding == "utf8-zlib":
        if rows == 0:
            return np.empty(0, dtype=object)
        values = raw.decode("utf-8").split("\x00")
        if len(values) != rows:
            raise ValueError(f"string chunk has {len(values)} values, "
                             f"expected {rows}")
        return np.array(values, dtype=object)
    if encoding == "dict-zlib":
        (dict_len,) = struct.unpack("<I", raw[:4])
        dictionary = raw[4:4 + dict_len].decode("utf-8").split("\x00")
        codes = np.frombuffer(raw[4 + dict_len:], dtype=np.int32)
        if len(codes) != rows:
            raise ValueError(f"dictionary chunk has {len(codes)} codes, "
                             f"expected {rows}")
        lookup = np.array(dictionary, dtype=object)
        return lookup[codes]
    if encoding == "raw-zlib":
        return np.frombuffer(raw, dtype=dtype.numpy_dtype).copy()
    raise ValueError(f"unknown encoding {encoding!r}")


def _column_stats(array: np.ndarray, dtype: DataType):
    if len(array) == 0:
        return None, None
    if dtype is DataType.STRING:
        values = [str(v) for v in array]
        return min(values), max(values)
    return float(np.min(array)), float(np.max(array))


def write_file(batch: RecordBatch,
               row_group_size: int = DEFAULT_ROW_GROUP_SIZE) -> bytes:
    """Serialize a batch into the columnar container format."""
    if row_group_size <= 0:
        raise ValueError("row_group_size must be positive")
    body = bytearray(MAGIC)
    row_groups: list[list[ChunkMeta]] = []
    for start in range(0, max(len(batch), 1), row_group_size):
        stop = min(start + row_group_size, len(batch))
        group: list[ChunkMeta] = []
        for field in batch.schema:
            array = batch.column(field.name)[start:stop]
            payload, encoding = _encode_column(array, field.dtype)
            min_value, max_value = _column_stats(array, field.dtype)
            group.append(ChunkMeta(
                column=field.name, offset=len(body), size=len(payload),
                encoding=encoding, rows=stop - start,
                min_value=min_value, max_value=max_value))
            body.extend(payload)
        row_groups.append(group)
        if stop >= len(batch):
            break
    metadata = FileMetadata(schema=batch.schema, num_rows=len(batch),
                            row_groups=row_groups)
    footer = metadata.to_json()
    body.extend(footer)
    body.extend(struct.pack("<Q", len(footer)))
    body.extend(MAGIC)
    return bytes(body)


def read_metadata(data: bytes) -> FileMetadata:
    """Parse the footer of a columnar file."""
    if len(data) < 16 or data[:4] != MAGIC or data[-4:] != MAGIC:
        raise ValueError("not a columnar file (bad magic)")
    (footer_len,) = struct.unpack("<Q", data[-12:-4])
    footer_start = len(data) - 12 - footer_len
    if footer_start < 4:
        raise ValueError("corrupt footer length")
    return FileMetadata.from_json(data[footer_start:footer_start + footer_len])


#: A zone-map predicate: given (min, max), may the chunk contain matches?
ZoneMapPredicate = Callable[[Optional[float | str], Optional[float | str]], bool]


def content_key(data: bytes) -> bytes:
    """Content digest of a serialized file, usable as a cache key.

    Keys reads of transient objects (shuffle slices carry the query id
    in their object key, so identity-based keys never repeat) by their
    bytes instead: identical payloads share footer and chunk entries.
    """
    return hashlib.md5(data).digest()


def _batch_content_key(batch: RecordBatch, row_group_size: int) -> bytes:
    """Content digest of a batch: two batches with equal keys serialize
    to byte-identical files.

    Values are length-framed (strings) or raw buffers tagged with their
    physical dtype (numerics), so no two distinct column contents can
    produce the same digest input.
    """
    h = hashlib.md5()
    h.update(struct.pack("<QQ", len(batch), row_group_size))
    for field in batch.schema:
        array = batch.columns[field.name]
        h.update(field.name.encode("utf-8"))
        h.update(field.dtype.value.encode("utf-8"))
        if field.dtype is DataType.STRING:
            for value in array.tolist():
                encoded = str(value).encode("utf-8")
                h.update(struct.pack("<Q", len(encoded)))
                h.update(encoded)
        else:
            h.update(str(array.dtype).encode("utf-8"))
            h.update(np.ascontiguousarray(array).tobytes())
    return h.digest()


class ColumnarCache:
    """LRU cache of parsed footers and decoded column chunks.

    Decoding is pure host-side CPU work: the simulated cost of a read
    (requests, transfer time, decode compute) is charged *before*
    :func:`read_file` runs, so serving a footer or chunk from this cache
    changes wall-clock only, never a simulated outcome. Entries are
    keyed by a caller-supplied identity token — ``(object key, version)``
    for base tables, plus the partition index for shuffle slices — so an
    overwritten object (new version) can never serve stale bytes.

    Cached chunk arrays are shared across readers but never aliased into
    a :class:`RecordBatch`: ``read_file`` concatenates pieces, and
    ``np.concatenate`` always copies, even for a single input.
    """

    def __init__(self, max_bytes: float = 256 * 1024 * 1024) -> None:
        if max_bytes <= 0:
            raise ValueError("max_bytes must be positive")
        self.max_bytes = float(max_bytes)
        self._footers: OrderedDict[Any, FileMetadata] = OrderedDict()
        self._chunks: OrderedDict[Any, np.ndarray] = OrderedDict()
        self._chunk_bytes = 0.0
        self._encoded: OrderedDict[bytes, bytes] = OrderedDict()
        self._encoded_bytes = 0.0
        #: Fully assembled reads: (cache_key, projection) -> the schema,
        #: concatenated column arrays, and physical size of the decoded
        #: batch. Hits rebuild a fresh RecordBatch around the shared
        #: arrays (columns are never mutated in place — see batch.py).
        self._assembled: OrderedDict[Any, tuple] = OrderedDict()
        self.hits = 0
        self.misses = 0

    def metadata(self, cache_key: Any, data: bytes) -> FileMetadata:
        """Parsed footer of ``data``, from cache when possible."""
        cached = self._footers.get(cache_key)
        if cached is not None:
            self._footers.move_to_end(cache_key)
            self.hits += 1
            return cached
        self.misses += 1
        metadata = read_metadata(data)
        self._footers[cache_key] = metadata
        while len(self._footers) > 1024:
            self._footers.popitem(last=False)
        return metadata

    def chunk(self, cache_key: Any, chunk: ChunkMeta, data: bytes,
              dtype: DataType) -> np.ndarray:
        """Decoded array for ``chunk``, from cache when possible.

        Callers must treat the returned array as read-only.
        """
        key = (cache_key, chunk.offset)
        cached = self._chunks.get(key)
        if cached is not None:
            self._chunks.move_to_end(key)
            self.hits += 1
            return cached
        self.misses += 1
        payload = data[chunk.offset:chunk.offset + chunk.size]
        array = _decode_column(payload, chunk.encoding, dtype, chunk.rows)
        self._chunks[key] = array
        self._chunk_bytes += array.nbytes
        while self._chunk_bytes > self.max_bytes and self._chunks:
            _, evicted = self._chunks.popitem(last=False)
            self._chunk_bytes -= evicted.nbytes
        return array

    def encode_batch(self, batch: RecordBatch,
                     row_group_size: int = DEFAULT_ROW_GROUP_SIZE) -> bytes:
        """Serialize ``batch`` via :func:`write_file`, memoized by content.

        Serving workloads write the same shuffle partitions for every
        execution of a query template; hashing the batch is several
        times cheaper than re-running dictionary encoding, zlib, and
        footer serialization. The returned bytes are exactly what
        ``write_file`` produces, so simulated object sizes are
        unchanged.
        """
        key = _batch_content_key(batch, row_group_size)
        hit = self._encoded.get(key)
        if hit is not None:
            self._encoded.move_to_end(key)
            self.hits += 1
            return hit
        self.misses += 1
        payload = write_file(batch, row_group_size=row_group_size)
        self._encoded[key] = payload
        self._encoded_bytes += len(payload)
        while self._encoded_bytes > self.max_bytes and self._encoded:
            _, evicted = self._encoded.popitem(last=False)
            self._encoded_bytes -= len(evicted)
        return payload

    def assembled(self, key: Any) -> "RecordBatch | None":
        """A fresh batch from a cached assembled read, or ``None``.

        The batch shares its column arrays with every other hit of the
        same entry; its ``logical_bytes`` matches what a cold
        :func:`read_file` would have produced (the physical size),
        so callers may overwrite it exactly as they do on a miss.
        """
        entry = self._assembled.get(key)
        if entry is None:
            return None
        self._assembled.move_to_end(key)
        self.hits += 1
        schema, arrays, physical = entry
        batch = RecordBatch(schema, arrays, logical_bytes=float(physical))
        batch._physical = physical
        return batch

    def store_assembled(self, key: Any, batch: "RecordBatch") -> None:
        """Remember a fully decoded read for :meth:`assembled`."""
        self._assembled[key] = (batch.schema, dict(batch.columns),
                                batch.physical_bytes)
        while len(self._assembled) > 512:
            self._assembled.popitem(last=False)

    def clear(self) -> None:
        """Drop every cached footer, chunk, and encoded file."""
        self._footers.clear()
        self._chunks.clear()
        self._chunk_bytes = 0.0
        self._encoded.clear()
        self._encoded_bytes = 0.0
        self._assembled.clear()


def read_file(data: bytes, columns: Optional[Iterable[str]] = None,
              zone_map_filters: Optional[dict[str, ZoneMapPredicate]] = None,
              cache: Optional[ColumnarCache] = None,
              cache_key: Any = None) -> RecordBatch:
    """Read a columnar file with projection and selection pushdown.

    ``columns`` restricts which column chunks are decoded; row groups
    whose zone maps fail any ``zone_map_filters`` entry are skipped
    entirely. With both ``cache`` and ``cache_key``, footer parsing and
    chunk decoding are served from the cache on repeat reads of the same
    object version.
    """
    use_cache = cache is not None and cache_key is not None
    projection = tuple(columns) if columns is not None else None
    assembled_key = None
    if use_cache and not zone_map_filters:
        # Zone-map predicates are per-query callables, so only
        # filter-free reads are cached whole; filtered reads still hit
        # the footer and chunk caches below.
        assembled_key = (cache_key, projection)
        hit = cache.assembled(assembled_key)
        if hit is not None:
            return hit
    if use_cache:
        metadata = cache.metadata(cache_key, data)
    else:
        metadata = read_metadata(data)
    wanted = (list(projection) if projection is not None
              else metadata.schema.names())
    sub_schema = metadata.schema.select(wanted)
    filters = zone_map_filters or {}
    pieces: dict[str, list[np.ndarray]] = {name: [] for name in wanted}
    for group in metadata.row_groups:
        by_name = {chunk.column: chunk for chunk in group}
        skip = False
        for column, predicate in filters.items():
            chunk = by_name.get(column)
            if chunk is not None and not predicate(chunk.min_value,
                                                   chunk.max_value):
                skip = True
                break
        if skip:
            continue
        for name in wanted:
            chunk = by_name[name]
            dtype = metadata.schema.field(name).dtype
            if use_cache:
                pieces[name].append(cache.chunk(cache_key, chunk, data, dtype))
                continue
            payload = data[chunk.offset:chunk.offset + chunk.size]
            pieces[name].append(
                _decode_column(payload, chunk.encoding, dtype, chunk.rows))
    arrays = {}
    for name in wanted:
        dtype = metadata.schema.field(name).dtype
        if pieces[name]:
            arrays[name] = np.concatenate(pieces[name])
        else:
            arrays[name] = np.empty(0, dtype=dtype.numpy_dtype)
    batch = RecordBatch(sub_schema, arrays)
    if assembled_key is not None:
        cache.store_assembled(assembled_key, batch)
    return batch


class ColumnarFile:
    """Convenience wrapper pairing bytes with parsed metadata."""

    def __init__(self, data: bytes) -> None:
        self.data = data
        self.metadata = read_metadata(data)

    @classmethod
    def from_batch(cls, batch: RecordBatch,
                   row_group_size: int = DEFAULT_ROW_GROUP_SIZE
                   ) -> "ColumnarFile":
        """Encode a batch into a file."""
        return cls(write_file(batch, row_group_size=row_group_size))

    @property
    def num_rows(self) -> int:
        """Total row count."""
        return self.metadata.num_rows

    @property
    def size(self) -> int:
        """Physical file size in bytes."""
        return len(self.data)

    def read(self, columns: Optional[Iterable[str]] = None,
             zone_map_filters: Optional[dict[str, ZoneMapPredicate]] = None
             ) -> RecordBatch:
        """Decode (a projection of) the file."""
        return read_file(self.data, columns=columns,
                         zone_map_filters=zone_map_filters)
