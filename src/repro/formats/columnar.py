"""The columnar file container.

Layout (all integers little-endian):

* magic ``SKYR`` (4 bytes)
* row groups, each a sequence of zlib-compressed column chunks
* footer: JSON metadata (schema, row-group boundaries, per-chunk offsets,
  sizes, encodings, and min/max zone maps)
* footer length (8 bytes) + magic ``SKYR``

Readers fetch the footer first, then only the chunks their projection
needs, skipping row groups whose zone maps cannot satisfy the predicate
(projection and selection pushdown, Section 3.2).
"""

from __future__ import annotations

import json
import struct
import zlib
from dataclasses import dataclass
from typing import Callable, Iterable, Optional

import numpy as np

from repro.formats.batch import RecordBatch
from repro.formats.schema import DataType, Schema

MAGIC = b"SKYR"
DEFAULT_ROW_GROUP_SIZE = 64 * 1024


@dataclass
class ChunkMeta:
    """Location and statistics of one column chunk."""

    column: str
    offset: int
    size: int
    encoding: str
    rows: int
    min_value: Optional[float | str]
    max_value: Optional[float | str]

    def to_dict(self) -> dict:
        return {
            "column": self.column, "offset": self.offset, "size": self.size,
            "encoding": self.encoding, "rows": self.rows,
            "min": self.min_value, "max": self.max_value,
        }

    @classmethod
    def from_dict(cls, data: dict) -> "ChunkMeta":
        return cls(column=data["column"], offset=data["offset"],
                   size=data["size"], encoding=data["encoding"],
                   rows=data["rows"], min_value=data["min"],
                   max_value=data["max"])


@dataclass
class FileMetadata:
    """Footer contents: schema plus chunk index."""

    schema: Schema
    num_rows: int
    row_groups: list[list[ChunkMeta]]

    def to_json(self) -> bytes:
        payload = {
            "schema": self.schema.to_dict(),
            "num_rows": self.num_rows,
            "row_groups": [[chunk.to_dict() for chunk in group]
                           for group in self.row_groups],
        }
        # Simulated wire format, not an artifact: the compact footer's
        # byte size models S3 object sizes, and canonical_json's indent
        # would inflate every simulated transfer.
        return json.dumps(payload).encode("utf-8")  # repro-lint: disable=ARCH002 compact wire format sizes simulated bytes

    @classmethod
    def from_json(cls, raw: bytes) -> "FileMetadata":
        payload = json.loads(raw.decode("utf-8"))
        return cls(
            schema=Schema.from_dict(payload["schema"]),
            num_rows=payload["num_rows"],
            row_groups=[[ChunkMeta.from_dict(chunk) for chunk in group]
                        for group in payload["row_groups"]])


#: Use dictionary encoding when distinct values cover at most this
#: fraction of a string chunk (low cardinality, e.g. flags and modes).
DICTIONARY_CARDINALITY_FRACTION = 0.5


def _encode_column(array: np.ndarray, dtype: DataType) -> tuple[bytes, str]:
    """Compress one column chunk; returns (payload, encoding tag).

    Strings choose between plain UTF-8 and dictionary encoding: columns
    like ``l_returnflag`` or ``l_shipmode`` hold a handful of distinct
    values, so storing (dictionary + per-row codes) beats repeating the
    text — the usual Parquet trade-off.
    """
    if dtype is DataType.STRING:
        values = [str(v) for v in array]
        uniques = sorted(set(values))
        if values and len(uniques) <= max(
                1, int(len(values) * DICTIONARY_CARDINALITY_FRACTION)):
            index = {value: code for code, value in enumerate(uniques)}
            codes = np.array([index[v] for v in values], dtype=np.int32)
            dictionary = "\x00".join(uniques).encode("utf-8")
            payload = (struct.pack("<I", len(dictionary)) + dictionary
                       + codes.tobytes())
            return zlib.compress(payload, level=1), "dict-zlib"
        blob = "\x00".join(values).encode("utf-8")
        return zlib.compress(blob, level=1), "utf8-zlib"
    contiguous = np.ascontiguousarray(array.astype(dtype.numpy_dtype))
    return zlib.compress(contiguous.tobytes(), level=1), "raw-zlib"


def _decode_column(payload: bytes, encoding: str, dtype: DataType,
                   rows: int) -> np.ndarray:
    """Invert :func:`_encode_column`."""
    raw = zlib.decompress(payload)
    if encoding == "utf8-zlib":
        if rows == 0:
            return np.empty(0, dtype=object)
        values = raw.decode("utf-8").split("\x00")
        if len(values) != rows:
            raise ValueError(f"string chunk has {len(values)} values, "
                             f"expected {rows}")
        return np.array(values, dtype=object)
    if encoding == "dict-zlib":
        (dict_len,) = struct.unpack("<I", raw[:4])
        dictionary = raw[4:4 + dict_len].decode("utf-8").split("\x00")
        codes = np.frombuffer(raw[4 + dict_len:], dtype=np.int32)
        if len(codes) != rows:
            raise ValueError(f"dictionary chunk has {len(codes)} codes, "
                             f"expected {rows}")
        lookup = np.array(dictionary, dtype=object)
        return lookup[codes]
    if encoding == "raw-zlib":
        return np.frombuffer(raw, dtype=dtype.numpy_dtype).copy()
    raise ValueError(f"unknown encoding {encoding!r}")


def _column_stats(array: np.ndarray, dtype: DataType):
    if len(array) == 0:
        return None, None
    if dtype is DataType.STRING:
        values = [str(v) for v in array]
        return min(values), max(values)
    return float(np.min(array)), float(np.max(array))


def write_file(batch: RecordBatch,
               row_group_size: int = DEFAULT_ROW_GROUP_SIZE) -> bytes:
    """Serialize a batch into the columnar container format."""
    if row_group_size <= 0:
        raise ValueError("row_group_size must be positive")
    body = bytearray(MAGIC)
    row_groups: list[list[ChunkMeta]] = []
    for start in range(0, max(len(batch), 1), row_group_size):
        stop = min(start + row_group_size, len(batch))
        group: list[ChunkMeta] = []
        for field in batch.schema:
            array = batch.column(field.name)[start:stop]
            payload, encoding = _encode_column(array, field.dtype)
            min_value, max_value = _column_stats(array, field.dtype)
            group.append(ChunkMeta(
                column=field.name, offset=len(body), size=len(payload),
                encoding=encoding, rows=stop - start,
                min_value=min_value, max_value=max_value))
            body.extend(payload)
        row_groups.append(group)
        if stop >= len(batch):
            break
    metadata = FileMetadata(schema=batch.schema, num_rows=len(batch),
                            row_groups=row_groups)
    footer = metadata.to_json()
    body.extend(footer)
    body.extend(struct.pack("<Q", len(footer)))
    body.extend(MAGIC)
    return bytes(body)


def read_metadata(data: bytes) -> FileMetadata:
    """Parse the footer of a columnar file."""
    if len(data) < 16 or data[:4] != MAGIC or data[-4:] != MAGIC:
        raise ValueError("not a columnar file (bad magic)")
    (footer_len,) = struct.unpack("<Q", data[-12:-4])
    footer_start = len(data) - 12 - footer_len
    if footer_start < 4:
        raise ValueError("corrupt footer length")
    return FileMetadata.from_json(data[footer_start:footer_start + footer_len])


#: A zone-map predicate: given (min, max), may the chunk contain matches?
ZoneMapPredicate = Callable[[Optional[float | str], Optional[float | str]], bool]


def read_file(data: bytes, columns: Optional[Iterable[str]] = None,
              zone_map_filters: Optional[dict[str, ZoneMapPredicate]] = None
              ) -> RecordBatch:
    """Read a columnar file with projection and selection pushdown.

    ``columns`` restricts which column chunks are decoded; row groups
    whose zone maps fail any ``zone_map_filters`` entry are skipped
    entirely.
    """
    metadata = read_metadata(data)
    wanted = list(columns) if columns is not None else metadata.schema.names()
    sub_schema = metadata.schema.select(wanted)
    filters = zone_map_filters or {}
    pieces: dict[str, list[np.ndarray]] = {name: [] for name in wanted}
    for group in metadata.row_groups:
        by_name = {chunk.column: chunk for chunk in group}
        skip = False
        for column, predicate in filters.items():
            chunk = by_name.get(column)
            if chunk is not None and not predicate(chunk.min_value,
                                                   chunk.max_value):
                skip = True
                break
        if skip:
            continue
        for name in wanted:
            chunk = by_name[name]
            dtype = metadata.schema.field(name).dtype
            payload = data[chunk.offset:chunk.offset + chunk.size]
            pieces[name].append(
                _decode_column(payload, chunk.encoding, dtype, chunk.rows))
    arrays = {}
    for name in wanted:
        dtype = metadata.schema.field(name).dtype
        if pieces[name]:
            arrays[name] = np.concatenate(pieces[name])
        else:
            arrays[name] = np.empty(0, dtype=dtype.numpy_dtype)
    return RecordBatch(sub_schema, arrays)


class ColumnarFile:
    """Convenience wrapper pairing bytes with parsed metadata."""

    def __init__(self, data: bytes) -> None:
        self.data = data
        self.metadata = read_metadata(data)

    @classmethod
    def from_batch(cls, batch: RecordBatch,
                   row_group_size: int = DEFAULT_ROW_GROUP_SIZE
                   ) -> "ColumnarFile":
        """Encode a batch into a file."""
        return cls(write_file(batch, row_group_size=row_group_size))

    @property
    def num_rows(self) -> int:
        """Total row count."""
        return self.metadata.num_rows

    @property
    def size(self) -> int:
        """Physical file size in bytes."""
        return len(self.data)

    def read(self, columns: Optional[Iterable[str]] = None,
             zone_map_filters: Optional[dict[str, ZoneMapPredicate]] = None
             ) -> RecordBatch:
        """Decode (a projection of) the file."""
        return read_file(self.data, columns=columns,
                         zone_map_filters=zone_map_filters)
