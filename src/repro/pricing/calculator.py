"""Experiment cost accounting.

The paper's driver aggregates request counts and compute runtimes, then
estimates cost via the AWS price list service, disregarding bulk
discounts (Section 3.1). :class:`CostCalculator` is that component: feed
it function invocations, VM hours, and storage request statistics; read
back an itemized :class:`ExperimentCost`.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro import units
from repro.pricing.catalog import (
    LAMBDA_PRICING,
    STORAGE_PRICES,
    LambdaPricing,
    ec2_instance,
)
from repro.storage.base import RequestStats, RequestType


@dataclass
class ExperimentCost:
    """Itemized cost of one experiment, in dollars."""

    compute_faas: float = 0.0
    compute_iaas: float = 0.0
    storage_requests: float = 0.0
    storage_transfer: float = 0.0
    storage_capacity: float = 0.0
    detail: dict[str, float] = field(default_factory=dict)

    @property
    def total(self) -> float:
        """Grand total in dollars."""
        return (self.compute_faas + self.compute_iaas + self.storage_requests
                + self.storage_transfer + self.storage_capacity)

    @property
    def total_cents(self) -> float:
        """Grand total in cents (the paper reports query costs in ¢)."""
        return self.total * 100.0

    def add(self, label: str, amount: float) -> None:
        """Track a labelled sub-amount in the detail map."""
        self.detail[label] = self.detail.get(label, 0.0) + amount


class CostCalculator:
    """Accumulates experiment cost from runtime statistics."""

    def __init__(self, lambda_pricing: LambdaPricing = LAMBDA_PRICING) -> None:
        self.lambda_pricing = lambda_pricing
        self.cost = ExperimentCost()

    def add_function_invocation(self, memory_bytes: float, duration_s: float,
                                ephemeral_bytes: float = 0.0,
                                label: str = "lambda") -> float:
        """Record one Lambda invocation; returns its cost."""
        amount = self.lambda_pricing.invocation_cost(
            memory_bytes, duration_s, ephemeral_bytes)
        self.cost.compute_faas += amount
        self.cost.add(label, amount)
        return amount

    def add_vm_time(self, instance_name: str, duration_s: float,
                    count: int = 1, reserved: bool = False,
                    label: str = "ec2") -> float:
        """Record VM usage; returns its cost.

        EC2 bills per-second with a one-minute minimum [15].
        """
        instance = ec2_instance(instance_name)
        hourly = instance.hourly_usd
        if reserved and instance.reserved_hourly_usd is not None:
            hourly = instance.reserved_hourly_usd
        billed_s = max(duration_s, 60.0)
        amount = count * hourly * billed_s / 3600.0
        self.cost.compute_iaas += amount
        self.cost.add(label, amount)
        return amount

    def add_storage_requests(self, service_name: str, stats: RequestStats,
                             label: str | None = None) -> float:
        """Record storage request/transfer cost from a stats hook.

        Every counted request is billed — including throttles and
        timeouts, matching the paper's conservative accounting.
        """
        pricing = STORAGE_PRICES[service_name]
        reads = stats.total(RequestType.GET)
        writes = stats.total(RequestType.PUT)
        request_cost = (reads * pricing.read_request
                        + writes * pricing.write_request)
        transfer_cost = (pricing.read_cost(reads, stats.bytes_read)
                         + pricing.write_cost(writes, stats.bytes_written)
                         - request_cost)
        self.cost.storage_requests += request_cost
        self.cost.storage_transfer += transfer_cost
        self.cost.add(label or f"storage:{service_name}",
                      request_cost + transfer_cost)
        return request_cost + transfer_cost

    def add_storage_capacity(self, service_name: str, stored_bytes: float,
                             duration_s: float,
                             label: str | None = None) -> float:
        """Record data-at-rest cost for a service."""
        pricing = STORAGE_PRICES[service_name]
        amount = pricing.storage_cost(stored_bytes, duration_s)
        self.cost.storage_capacity += amount
        self.cost.add(label or f"capacity:{service_name}", amount)
        return amount

    def s3_warm_iops_cost_per_hour(self, iops: float) -> float:
        """Cost of keeping S3 'warm' at a sustained read request rate.

        Section 2.2: keeping S3 warm for 100K IOPS costs ~$144/hour.
        """
        pricing = STORAGE_PRICES["s3-standard"]
        return iops * 3600.0 * pricing.read_request


def stage_cost(invocations, storage_reads, storage_writes) -> dict:
    """Pure per-stage cost attribution (the obs profiler's price hook).

    ``invocations`` is an iterable of ``(memory_bytes, duration_s)``
    pairs; ``storage_reads`` / ``storage_writes`` map service name to
    ``(request_count, total_bytes)``. Returns the compute/storage
    split in dollars — same inputs, same floats, no state.
    """
    compute = sum(LAMBDA_PRICING.invocation_cost(memory, duration)
                  for memory, duration in invocations)
    storage = 0.0
    for service, (count, total_bytes) in sorted(storage_reads.items()):
        storage += STORAGE_PRICES[service].read_cost(count, total_bytes)
    for service, (count, total_bytes) in sorted(storage_writes.items()):
        storage += STORAGE_PRICES[service].write_cost(count, total_bytes)
    return {"compute_usd": compute, "storage_usd": storage,
            "total_usd": compute + storage}


def gib_month_price(service_name: str) -> float:
    """Dollars per GiB-month at rest for a storage service."""
    return STORAGE_PRICES[service_name].storage_per_gib_month


def cheapest_storage_for_capacity() -> str:
    """The cheapest place to keep data at rest (S3, by ~an order)."""
    return min(STORAGE_PRICES, key=lambda name:
               STORAGE_PRICES[name].storage_per_gib_month)


def cost_per_gib_per_s_read(service_name: str, request_bytes: float) -> float:
    """Cents per GiB/s of sustained read throughput (Section 4.3.1).

    The paper compares S3, DynamoDB, and EFS at 0.00064, 6.55, and
    3.00 ¢/GiB/s respectively, using each service's throughput-optimal
    request size.
    """
    pricing = STORAGE_PRICES[service_name]
    requests_per_gib = units.GiB / request_bytes
    dollars = pricing.read_cost(int(round(requests_per_gib)),
                                total_bytes=units.GiB)
    return dollars * 100.0
