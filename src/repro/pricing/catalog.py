"""AWS us-east-1 price catalog (Tables 1 and 2 of the paper).

All prices are in **US dollars**; sizes in bytes; durations in seconds
unless a field name says otherwise. The constants reflect the paper's
time frame (2024) and are the inputs to every cost number the library
reports.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional

from repro import units


@dataclass(frozen=True)
class LambdaPricing:
    """AWS Lambda (ARM) pricing [32]."""

    #: Dollars per GiB-second of configured memory.
    per_gib_second: float = 1.33334e-5
    #: Dollars per request (invocation).
    per_request: float = 0.20 / 1e6
    #: Dollars per GiB-second of ephemeral storage beyond the free 512 MiB.
    ephemeral_per_gib_second: float = 3.09e-8
    #: Free ephemeral storage per sandbox.
    ephemeral_free_bytes: float = 512 * units.MiB
    #: Memory required per vCPU-equivalent (1,769 MiB per vCPU [39, 40]).
    memory_per_vcpu_bytes: float = 1_769 * units.MiB

    def invocation_cost(self, memory_bytes: float, duration_s: float,
                        ephemeral_bytes: float = 0.0) -> float:
        """Cost of one invocation of the given size and duration."""
        gib = memory_bytes / units.GiB
        cost = self.per_request + gib * duration_s * self.per_gib_second
        extra = max(0.0, ephemeral_bytes - self.ephemeral_free_bytes)
        cost += (extra / units.GiB) * duration_s * self.ephemeral_per_gib_second
        return cost

    def memory_for_vcpus(self, vcpus: float) -> float:
        """Memory (bytes) to configure for a vCPU-equivalent count."""
        return vcpus * self.memory_per_vcpu_bytes


LAMBDA_PRICING = LambdaPricing()


@dataclass(frozen=True)
class EC2InstanceType:
    """One EC2 instance type: capacity and pricing."""

    name: str
    vcpus: int
    memory_bytes: float
    hourly_usd: float
    #: Baseline network bandwidth (bytes/second).
    network_baseline: float
    #: Burst network bandwidth (bytes/second); equals baseline when the
    #: instance has no bursting headroom.
    network_burst: float
    #: Network token-bucket size (bytes) — calibrated against Figure 6:
    #: bucket size and burst duration grow with instance size.
    network_bucket_bytes: float
    #: Local NVMe capacity, if any (C6gd variants).
    nvme_bytes: Optional[float] = None
    #: Reserved-pricing hourly rate (3-year tier; ~40-60% discount).
    reserved_hourly_usd: Optional[float] = None

    @property
    def per_gib_hour(self) -> float:
        """Dollars per GiB of RAM per hour at on-demand pricing."""
        return self.hourly_usd / (self.memory_bytes / units.GiB)

    @property
    def per_vcpu_hour(self) -> float:
        """Dollars per vCPU per hour at on-demand pricing."""
        return self.hourly_usd / self.vcpus


def _c6g(size: str, vcpus: int, mem_gib: int, hourly: float,
         baseline_gbps: float, burst_gbps: float,
         bucket_gib: float) -> EC2InstanceType:
    return EC2InstanceType(
        name=f"c6g.{size}", vcpus=vcpus, memory_bytes=mem_gib * units.GiB,
        hourly_usd=hourly,
        network_baseline=baseline_gbps * units.Gbps,
        network_burst=burst_gbps * units.Gbps,
        network_bucket_bytes=bucket_gib * units.GiB,
        reserved_hourly_usd=round(hourly * 0.5, 6))


#: The C6g family (Graviton2) used throughout the evaluation [11, 15].
#: Network baselines/bursts follow the EC2 bandwidth documentation [22];
#: bucket sizes are calibrated to Figure 6: both the bucket size and the
#: burst duration (bucket / net drain, ~2 to ~25 minutes) grow with
#: instance size; instances of 8xlarge and up sustain their full rate.
_C6G_FAMILY = [
    _c6g("medium", 1, 2, 0.034, 0.500, 10.0, 130.0),
    _c6g("large", 2, 4, 0.068, 0.750, 10.0, 250.0),
    _c6g("xlarge", 4, 8, 0.136, 1.250, 10.0, 490.0),
    _c6g("2xlarge", 8, 16, 0.272, 2.500, 10.0, 600.0),
    _c6g("4xlarge", 16, 32, 0.544, 5.000, 10.0, 700.0),
    _c6g("8xlarge", 32, 64, 1.088, 12.000, 12.0, 0.0),
    _c6g("12xlarge", 48, 96, 1.632, 20.000, 20.0, 0.0),
    _c6g("16xlarge", 64, 128, 2.176, 25.000, 25.0, 0.0),
]

#: C6gd adds local NVMe; the SSD rent is the C6gd/C6g price delta.
_C6GD_FAMILY = [
    EC2InstanceType(
        name=base.name.replace("c6g.", "c6gd."),
        vcpus=base.vcpus, memory_bytes=base.memory_bytes,
        hourly_usd=round(base.hourly_usd * 1.129, 6),
        network_baseline=base.network_baseline,
        network_burst=base.network_burst,
        network_bucket_bytes=base.network_bucket_bytes,
        nvme_bytes=base.vcpus * 59.375 * units.GB,
        reserved_hourly_usd=round(base.hourly_usd * 1.129 * 0.5, 6))
    for base in _C6G_FAMILY
]

#: C6gn has ~4x the network throughput of C6g at ~27% price premium.
_C6GN_FAMILY = [
    EC2InstanceType(
        name=base.name.replace("c6g.", "c6gn."),
        vcpus=base.vcpus, memory_bytes=base.memory_bytes,
        hourly_usd=round(base.hourly_usd * 1.271, 6),
        network_baseline=base.network_baseline * 4.0,
        network_burst=min(base.network_burst * 4.0, 100 * units.Gbps),
        network_bucket_bytes=base.network_bucket_bytes * 4.0,
        reserved_hourly_usd=round(base.hourly_usd * 1.271 * 0.5, 6))
    for base in _C6G_FAMILY
]

EC2_INSTANCES: dict[str, EC2InstanceType] = {
    instance.name: instance
    for instance in (*_C6G_FAMILY, *_C6GD_FAMILY, *_C6GN_FAMILY)
}


def ec2_instance(name: str) -> EC2InstanceType:
    """Look up an instance type by name, e.g. ``"c6g.xlarge"``."""
    try:
        return EC2_INSTANCES[name]
    except KeyError:
        raise KeyError(f"unknown instance type {name!r}; known: "
                       f"{sorted(EC2_INSTANCES)}") from None


@dataclass(frozen=True)
class StoragePricing:
    """Pricing of one serverless storage service (Table 2)."""

    name: str
    #: Dollars per read request.
    read_request: float
    #: Dollars per write request.
    write_request: float
    #: Dollars per GiB read (transfer-out fee).
    read_transfer_per_gib: float
    #: Dollars per GiB written (transfer-in fee).
    write_transfer_per_gib: float
    #: Dollars per GiB-month of stored data.
    storage_per_gib_month: float
    #: Bytes included per request before size-based transfer charges kick
    #: in (S3 Express charges transfers beyond 512 KiB).
    request_free_bytes: float = float("inf")
    #: Billing unit size: DynamoDB splits requests into kilobyte-scale
    #: units (4 KB strongly-consistent read units, 1 KB write units) and
    #: charges the request price per unit. ``None`` = flat per request.
    read_unit_bytes: Optional[float] = None
    write_unit_bytes: Optional[float] = None

    def _billed_requests(self, count: int, total_bytes: float,
                         unit_bytes: Optional[float]) -> float:
        if unit_bytes is None:
            return float(count)
        # Each request bills at least one unit; in aggregate that is the
        # larger of the request count and the total unit count.
        return max(float(count), total_bytes / unit_bytes)

    def _billed_transfer(self, count: int, total_bytes: float) -> float:
        if self.request_free_bytes == float("inf"):
            return total_bytes
        return max(0.0, total_bytes - count * self.request_free_bytes)

    def read_cost(self, count: int, total_bytes: float = 0.0) -> float:
        """Cost of ``count`` reads moving ``total_bytes`` in aggregate."""
        billed = self._billed_requests(count, total_bytes, self.read_unit_bytes)
        cost = billed * self.read_request
        cost += (self._billed_transfer(count, total_bytes) / units.GiB) \
            * self.read_transfer_per_gib
        return cost

    def write_cost(self, count: int, total_bytes: float = 0.0) -> float:
        """Cost of ``count`` writes moving ``total_bytes`` in aggregate."""
        billed = self._billed_requests(count, total_bytes, self.write_unit_bytes)
        cost = billed * self.write_request
        cost += (self._billed_transfer(count, total_bytes) / units.GiB) \
            * self.write_transfer_per_gib
        return cost

    def storage_cost(self, stored_bytes: float, duration_s: float) -> float:
        """Cost of keeping ``stored_bytes`` for ``duration_s`` seconds."""
        months = duration_s / units.MONTH
        return (stored_bytes / units.GiB) * months * self.storage_per_gib_month


#: Table 2 of the paper, converted to dollars.
STORAGE_PRICES: dict[str, StoragePricing] = {
    "s3-standard": StoragePricing(
        name="s3-standard",
        read_request=0.40 / 1e6, write_request=5.00 / 1e6,
        read_transfer_per_gib=0.0, write_transfer_per_gib=0.0,
        storage_per_gib_month=0.023),
    "s3-express": StoragePricing(
        name="s3-express",
        read_request=0.20 / 1e6, write_request=2.50 / 1e6,
        read_transfer_per_gib=0.0015, write_transfer_per_gib=0.008,
        storage_per_gib_month=0.16,
        request_free_bytes=512 * units.KiB),
    "dynamodb": StoragePricing(
        name="dynamodb",
        read_request=0.25 / 1e6, write_request=1.25 / 1e6,
        read_transfer_per_gib=0.0, write_transfer_per_gib=0.0,
        storage_per_gib_month=0.25,
        read_unit_bytes=4 * units.KB, write_unit_bytes=1 * units.KB),
    "efs": StoragePricing(
        name="efs",
        read_request=0.0, write_request=0.0,
        read_transfer_per_gib=0.03, write_transfer_per_gib=0.06,
        storage_per_gib_month=0.30),
    #: Cross-region S3 access adds the inter-region transfer fee (Table 7).
    "s3-x-region": StoragePricing(
        name="s3-x-region",
        read_request=0.40 / 1e6, write_request=5.00 / 1e6,
        read_transfer_per_gib=0.02, write_transfer_per_gib=0.0,
        storage_per_gib_month=0.023),
}


@dataclass(frozen=True)
class EbsPricing:
    """EBS gp3 pricing [9, 10], used in the Table 7 hierarchy."""

    per_gib_month: float = 0.08
    per_provisioned_iops_month: float = 0.005
    free_iops: float = 3_000.0
    per_provisioned_mbps_month: float = 0.04
    free_mbps: float = 125.0
    max_iops: float = 16_000.0
    max_throughput: float = 1_000 * units.MB

    def volume_hourly_usd(self, size_bytes: float, iops: float,
                          throughput: float) -> float:
        """On-demand hourly rent of a gp3 volume with provisioned perf."""
        monthly = (size_bytes / units.GiB) * self.per_gib_month
        monthly += max(0.0, iops - self.free_iops) * self.per_provisioned_iops_month
        monthly += max(0.0, throughput / units.MB - self.free_mbps) \
            * self.per_provisioned_mbps_month
        return monthly / 730.0


EBS_GP3 = EbsPricing()

#: Marginal price of EC2 RAM, derived from the C6g/R6g price deltas
#: (~$2/GiB-month). This is the tier-1 rent used by the Table 7
#: break-even intervals.
MARGINAL_RAM_PER_GIB_HOUR = 2.0 / 730.0
