"""AWS price catalog and cost modelling.

Implements the economic side of the paper:

* :mod:`repro.pricing.catalog` — the price constants of Tables 1 and 2
  (Lambda, EC2 C6g/C6gd/C6gn, S3 Standard/Express, DynamoDB, EFS, EBS),
  us-east-1, as of the paper's time frame;
* :mod:`repro.pricing.calculator` — experiment cost accounting (the
  paper's driver estimates cost from request counts and compute runtimes
  via the AWS price list service, Section 3.1);
* :mod:`repro.pricing.breakeven` — the break-even formulas of Section 5:
  the two five-minute-rule variants (capacity-priced and request-priced
  storage), the shuffle break-even access size (BEAS), and the FaaS/IaaS
  break-even query throughput.
"""

from repro.pricing.catalog import (
    EBS_GP3,
    EC2_INSTANCES,
    EC2InstanceType,
    LAMBDA_PRICING,
    LambdaPricing,
    STORAGE_PRICES,
    StoragePricing,
    ec2_instance,
)
from repro.pricing.calculator import CostCalculator, ExperimentCost
from repro.pricing.breakeven import (
    break_even_access_size,
    break_even_interval_capacity,
    break_even_interval_requests,
    faas_break_even_queries_per_hour,
)

__all__ = [
    "CostCalculator",
    "EBS_GP3",
    "EC2InstanceType",
    "EC2_INSTANCES",
    "ExperimentCost",
    "LAMBDA_PRICING",
    "LambdaPricing",
    "STORAGE_PRICES",
    "StoragePricing",
    "break_even_access_size",
    "break_even_interval_capacity",
    "break_even_interval_requests",
    "ec2_instance",
    "faas_break_even_queries_per_hour",
]
