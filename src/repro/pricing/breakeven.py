"""Break-even formulas for serverless compute and storage (Section 5).

Three families of break-even points:

* :func:`break_even_interval_capacity` — Gray's five-minute rule for
  capacity-priced storage (RAM vs SSD/EBS), Section 5.3.1 first variant;
* :func:`break_even_interval_requests` — the request-priced variant for
  object stores and key-value stores, Section 5.3.1 second variant;
* :func:`break_even_access_size` — the shuffle access size at which
  object storage becomes cheaper than a provisioned VM cluster
  (Section 5.3.2);
* :func:`faas_break_even_queries_per_hour` — the query throughput below
  which FaaS execution is cheaper than a peak-provisioned VM cluster
  (Section 5.2).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional

from repro import units
from repro.pricing.catalog import StoragePricing


@dataclass(frozen=True)
class CapacityTier:
    """A capacity-priced storage tier (disk-like) for the BEI formula."""

    name: str
    #: Hourly rent of one device (dollars).
    rent_per_hour: float
    #: Random-access operations per second at small access sizes.
    iops: float
    #: Sequential bandwidth ceiling (bytes/second).
    bandwidth: float

    def accesses_per_second(self, access_bytes: float) -> float:
        """Access rate one device sustains at the given access size."""
        return min(self.iops, self.bandwidth / access_bytes)


def break_even_interval_capacity(access_bytes: float,
                                 tier2: CapacityTier,
                                 tier1_rent_per_mib_hour: float) -> float:
    """Five-minute-rule break-even interval for capacity-priced storage.

    ``BEI = (PagesPerMB / AccessesPerSecondPerDisk)
    * (RentPerHourPerDisk / RentPerHourPerMBofRAM)``

    Returns the interval in seconds: accesses more frequent than this are
    cheaper served from tier 1 (e.g. RAM); rarer accesses are cheaper left
    in tier 2 (e.g. SSD, EBS).
    """
    if access_bytes <= 0:
        raise ValueError(f"access size must be positive, got {access_bytes}")
    pages_per_mib = units.MiB / access_bytes
    accesses = tier2.accesses_per_second(access_bytes)
    return (pages_per_mib / accesses) * (tier2.rent_per_hour
                                         / tier1_rent_per_mib_hour)


def break_even_interval_requests(access_bytes: float,
                                 tier2: StoragePricing,
                                 tier1_rent_per_mib_hour: float,
                                 read: bool = True) -> float:
    """Five-minute-rule break-even for request-priced storage.

    ``BEI = PagesPerMB * PricePerAccessToTier2 / RentPerSecondPerMBofTier1``

    The access price includes any per-byte transfer fee (S3 Express,
    cross-region S3), which is what invalidates the classic inverse
    proportionality between interval and access size (Section 5.3.1).
    """
    if access_bytes <= 0:
        raise ValueError(f"access size must be positive, got {access_bytes}")
    pages_per_mib = units.MiB / access_bytes
    if read:
        price = tier2.read_cost(1, total_bytes=access_bytes)
    else:
        price = tier2.write_cost(1, total_bytes=access_bytes)
    rent_per_mib_second = tier1_rent_per_mib_hour / 3600.0
    return pages_per_mib * price / rent_per_mib_second


def break_even_access_size(tier2: StoragePricing,
                           server_bandwidth: float,
                           server_rent_per_hour: float,
                           read: bool = True) -> Optional[float]:
    """Shuffle break-even access size (bytes), Section 5.3.2.

    ``BEAS = PricePerAccess * MBPerHourPerServer / RentPerHourPerServer``

    Above this access size, shuffling through the object store is cheaper
    than through a provisioned key-value-store VM cluster whose capacity
    is its aggregate network bandwidth. Returns ``None`` when the storage
    service's per-byte transfer fee alone exceeds the per-byte cost of VM
    networking (S3 Express never breaks even, Table 8).
    """
    price_per_access = tier2.read_request if read else tier2.write_request
    transfer_per_gib = (tier2.read_transfer_per_gib if read
                        else tier2.write_transfer_per_gib)
    bytes_per_hour = server_bandwidth * 3600.0
    vm_cost_per_gib = server_rent_per_hour / (bytes_per_hour / units.GiB)
    if transfer_per_gib >= vm_cost_per_gib:
        return None
    # Each transferred byte costs (transfer - vm) less on the VM cluster;
    # the flat request price amortizes over the access size.
    effective_rate = vm_cost_per_gib - transfer_per_gib
    return price_per_access / (effective_rate / units.GiB)


def faas_break_even_queries_per_hour(faas_cost_per_query: float,
                                     vm_hourly_usd: float,
                                     peak_vms: int,
                                     provisioned_cost_fraction: float = 1.0
                                     ) -> float:
    """Query throughput at which FaaS and provisioned IaaS cost equal.

    A peak-provisioned cluster of ``peak_vms`` VMs costs a fixed hourly
    rate; FaaS costs scale per query. FaaS is economical for workloads
    below the returned queries/hour (Section 5.2).

    ``provisioned_cost_fraction`` models adaptively provisioned clusters
    with higher utilization: a cluster that pays only a fraction of the
    peak-provisioned rate lowers the break-even proportionally ("for
    adaptively provisioned clusters with higher utilization, the
    break-even throughput decreases proportionally").
    """
    if faas_cost_per_query <= 0:
        raise ValueError("faas_cost_per_query must be positive")
    if not 0 < provisioned_cost_fraction <= 1:
        raise ValueError("provisioned_cost_fraction must be in (0, 1]")
    cluster_per_hour = vm_hourly_usd * peak_vms * provisioned_cost_fraction
    return cluster_per_hour / faas_cost_per_query


def peak_to_average_node_ratio(stage_nodes: list[int],
                               stage_durations: list[float]) -> float:
    """Intra-query elasticity headroom (Section 5.2).

    The ratio between the peak stage width and the time-weighted average
    width: the cost-saving factor elastic provisioning offers over static
    peak provisioning for this query.
    """
    if len(stage_nodes) != len(stage_durations) or not stage_nodes:
        raise ValueError("stage_nodes and stage_durations must be "
                         "non-empty and equally long")
    total_time = sum(stage_durations)
    if total_time <= 0:
        raise ValueError("total stage duration must be positive")
    average = sum(n * d for n, d in zip(stage_nodes, stage_durations)) / total_time
    return max(stage_nodes) / average
