"""Lambda-compatible shim: run function handlers on VM worker slots.

The paper's framework uses "a shim layer that resembles the Lambda
execution environment to run functions on VM hosts" (Section 3.1), so the
same coordinator/worker binaries execute in both deployments. The shim
queues fragments and distributes them across the available worker slots
(Section 3.2) — there are no coldstarts, but parallelism is bounded by
the provisioned cluster.

Control-plane binaries (the query coordinator and invokers) run on the
cluster's head node without occupying worker slots; otherwise concurrent
queries could occupy every slot with coordinators and deadlock waiting
for their own workers.
"""

from __future__ import annotations

from typing import Any, Optional

from repro.faas.function import FunctionConfig, FunctionContext, InvocationRecord
from repro.iaas.fleet import VmInstance
from repro.sim import Environment, Resource

#: Function names treated as control plane by default (run on the head
#: node, no worker slot).
DEFAULT_DEDICATED = ("skyrise-coordinator", "skyrise-invoker")


class VmShim:
    """Executes Lambda-style handlers on a provisioned VM cluster."""

    def __init__(self, env: Environment, instances: list[VmInstance],
                 slots_per_vm: int = 1,
                 dedicated_functions: tuple[str, ...] = DEFAULT_DEDICATED
                 ) -> None:
        if not instances:
            raise ValueError("shim needs at least one instance")
        if slots_per_vm <= 0:
            raise ValueError("slots_per_vm must be positive")
        self.env = env
        self.instances = list(instances)
        self.slots_per_vm = slots_per_vm
        self.dedicated_functions = tuple(dedicated_functions)
        self._slots = Resource(env, capacity=len(instances) * slots_per_vm)
        self._next_vm = 0
        self._functions: dict[str, FunctionConfig] = {}
        self.records: list[InvocationRecord] = []

    def deploy(self, config: FunctionConfig) -> None:
        """Register a function binary with the shim."""
        self._functions[config.name] = config

    def function(self, name: str) -> FunctionConfig:
        """Look up a deployed function."""
        try:
            return self._functions[name]
        except KeyError:
            raise KeyError(f"function {name!r} is not deployed on the shim")

    @property
    def capacity(self) -> int:
        """Total worker slots across the cluster."""
        return self._slots.capacity

    @property
    def head_node(self) -> VmInstance:
        """The instance hosting control-plane binaries."""
        return self.instances[0]

    def invoke(self, name: str, payload: Any = None):
        """Process: run ``name`` on the cluster; re-raises handler errors.

        Worker binaries queue for a free VM slot ("the shim queues and
        distributes the fragments across the available worker slots");
        dedicated control-plane binaries run on the head node directly.
        """
        record = yield from self._execute(name, payload)
        if record.error is not None:
            raise record.error
        return record

    def invoke_async(self, name: str, payload: Any = None):
        """Process: like :meth:`invoke`, but errors stay on the record."""
        record = yield from self._execute(name, payload)
        return record

    def _execute(self, name: str, payload: Any):
        config = self.function(name)
        requested_at = self.env.now
        if name in self.dedicated_functions:
            return (yield from self._run(config, payload, requested_at,
                                         self.head_node))
        with self._slots.request() as slot:
            yield slot
            vm = self._pick_vm()
            record = yield from self._run(config, payload, requested_at, vm)
        return record

    def _run(self, config: FunctionConfig, payload: Any,
             requested_at: float, vm: VmInstance):
        started_at = self.env.now
        context = FunctionContext(
            env=self.env, platform=self, config=config,
            endpoint=vm.endpoint, sandbox_id=vm.id, cold=False)
        error: Optional[BaseException] = None
        response = None
        try:
            response = yield self.env.process(
                config.handler(context, payload), name=f"vm-fn-{config.name}")
        except BaseException as exc:  # noqa: BLE001 - recorded on the record
            error = exc
        record = InvocationRecord(
            function=config.name, sandbox_id=vm.id, cold=False,
            requested_at=requested_at, started_at=started_at,
            finished_at=self.env.now, response=response, error=error)
        self.records.append(record)
        return record

    def _pick_vm(self) -> VmInstance:
        vm = self.instances[self._next_vm % len(self.instances)]
        self._next_vm += 1
        return vm
