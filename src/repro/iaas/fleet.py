"""EC2 instance fleet provisioning."""

from __future__ import annotations

import itertools
import math
from dataclasses import dataclass, field
from typing import Optional

from repro.network.fabric import Endpoint, Fabric, FluidLink
from repro.network.shaper import ec2_shaper
from repro.pricing.catalog import EC2InstanceType, ec2_instance
from repro.sim import Environment, RandomStreams

#: Median time to provision and boot an on-demand instance (seconds).
VM_STARTUP_MEDIAN_S = 40.0
VM_STARTUP_SIGMA = 0.25


@dataclass
class VmInstance:
    """A running EC2 instance."""

    _ids = itertools.count()

    instance_type: EC2InstanceType
    endpoint: Endpoint
    started_at: float
    id: int = field(default_factory=lambda: next(VmInstance._ids))
    terminated_at: Optional[float] = None

    @property
    def running(self) -> bool:
        """Whether the instance is still up."""
        return self.terminated_at is None

    def uptime(self, now: float) -> float:
        """Billed runtime so far (or until termination)."""
        end = self.terminated_at if self.terminated_at is not None else now
        return end - self.started_at


class Ec2Fleet:
    """Provisions and terminates EC2 instances on the simulated fabric.

    Each instance gets a network endpoint whose ingress and egress share
    one EC2-style token bucket personality from the price catalog (the
    baseline/burst/bucket triple of Figure 6).
    """

    def __init__(self, env: Environment, fabric: Fabric, rng: RandomStreams,
                 vpc_link: Optional[FluidLink] = None) -> None:
        self.env = env
        self.fabric = fabric
        self.vpc_link = vpc_link
        self.instances: list[VmInstance] = []
        self._rng = rng.stream("iaas.startup")

    def provision(self, instance_name: str, count: int = 1):
        """Process: start ``count`` instances; returns them once all boot.

        Instances boot in parallel; the process completes when the slowest
        is up (the paper starts its VM clusters before experiments begin).
        """
        if count <= 0:
            raise ValueError(f"count must be positive, got {count}")
        instance_type = ec2_instance(instance_name)
        startups = [float(self._rng.lognormal(
            mean=math.log(VM_STARTUP_MEDIAN_S), sigma=VM_STARTUP_SIGMA))
            for _ in range(count)]
        yield self.env.timeout(max(startups))
        fresh = [self._launch(instance_type) for _ in range(count)]
        self.instances.extend(fresh)
        return fresh

    def _launch(self, instance_type: EC2InstanceType) -> VmInstance:
        links = (self.vpc_link,) if self.vpc_link is not None else ()
        # Ingress and egress each get a full token bucket; EC2 meters the
        # directions separately like Lambda does.
        endpoint = self.fabric.endpoint(
            f"{instance_type.name}-vm",
            ingress=self._shaper(instance_type),
            egress=self._shaper(instance_type),
            links=links)
        return VmInstance(instance_type=instance_type, endpoint=endpoint,
                          started_at=self.env.now)

    def _shaper(self, instance_type: EC2InstanceType):
        if instance_type.network_bucket_bytes <= 0:
            # No bursting headroom: a plain rate cap.
            return ec2_shaper(baseline_rate=instance_type.network_baseline,
                              burst_rate=instance_type.network_baseline,
                              bucket_bytes=1.0)
        return ec2_shaper(baseline_rate=instance_type.network_baseline,
                          burst_rate=instance_type.network_burst,
                          bucket_bytes=instance_type.network_bucket_bytes)

    def terminate(self, instance: VmInstance) -> None:
        """Stop an instance (it keeps its billing record)."""
        if instance.terminated_at is None:
            instance.terminated_at = self.env.now

    def terminate_all(self) -> None:
        """Stop every running instance."""
        for instance in self.instances:
            self.terminate(instance)

    def running_count(self) -> int:
        """Instances currently up."""
        return sum(1 for instance in self.instances if instance.running)
