"""EC2 IaaS simulator: instance fleet and the Lambda-compatible shim.

The paper deploys its query engine either on Lambda or, via a shim layer
that resembles the Lambda execution environment, on provisioned EC2 VMs
(Section 3.1 and Figure 4). :class:`Ec2Fleet` provisions instances with
their catalog network personalities (continuous-refill token buckets that
grow with instance size, Figure 6); :class:`VmShim` runs the exact same
function handlers on VM worker slots without coldstarts.
"""

from repro.iaas.fleet import Ec2Fleet, VmInstance
from repro.iaas.shim import VmShim

__all__ = ["Ec2Fleet", "VmInstance", "VmShim"]
