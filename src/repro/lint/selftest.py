"""`repro lint --self-test`: prove every checker still fires.

A checker that silently stops matching is worse than no checker — the
gate keeps passing while the invariant rots. The self-test runs the
full checker set against a bundled fixture of known violations and
compares the findings against expectations *written inline in the
fixture itself* (``# expect: DET001`` on the offending line, or
``# expect-next: LNT001`` on the line before when the offending line
already carries a suppression comment). Any drift — a missing finding,
an extra finding, a moved line — fails the self-test.
"""

from __future__ import annotations

import re
from collections import Counter

from repro.lint.framework import SourceModule

#: The fixture pretends to live in the ``sim`` layer so that upward
#: imports (telemetry, engine) violate ARCH001.
FIXTURE_MODULE = "repro.sim.lint_fixture"

#: Expectation markers inside the fixture.
_MARKER_RE = re.compile(r"#\s*expect(-next)?:\s*([A-Z0-9_]+(?:,[A-Z0-9_]+)*)")

FIXTURE = '''\
"""Known-violation fixture; compiled by the self-test, never imported."""
import json
import random
import time
from datetime import datetime

import numpy as np

from repro.telemetry.export import canonical_json  # expect: ARCH001
from repro.engine.plan import PhysicalPlan  # expect: ARCH001


def wall_clock():
    started = time.time()  # expect: DET001
    time.sleep(0.01)  # expect: DET001
    return started, datetime.now()  # expect: DET001


def unseeded(n):
    jitter = random.random()  # expect: DET002
    noise = np.random.rand(n)  # expect: DET002
    good = np.random.default_rng(7).random()
    return jitter, noise, good


def ordering(events):
    pending = {event.key for event in events}
    for key in pending:  # expect: DET003
        print(key)
    for event in set(events):  # expect: DET003
        print(event)
    ordered = sorted(set(events))
    return ordered, list({1, 2, 3})  # expect: DET003


def tiebreak(items):
    items.sort(key=id)  # expect: DET004
    return {id(item): item for item in items}  # expect: DET004


def export(payload):
    return json.dumps(payload)  # expect: ARCH002


def suppressed_export(payload):
    # A well-formed suppression: check ids, then a mandatory reason.
    return json.dumps(payload)  # repro-lint: disable=ARCH002 fixture: compact wire format


def bare_suppression(payload):
    # expect-next: LNT001
    return json.dumps(payload)  # repro-lint: disable=ARCH002


# expect-next: LNT002
def stale():  # repro-lint: disable=DET001 the wall-clock call below was removed
    return 0
'''


def expected_findings() -> Counter:
    """Parse the inline ``expect`` markers into a ``(line, check)`` multiset."""
    expected: Counter = Counter()
    for lineno, text in enumerate(FIXTURE.splitlines(), start=1):
        match = _MARKER_RE.search(text)
        if match is None:
            continue
        target = lineno + 1 if match.group(1) else lineno
        for check in match.group(2).split(","):
            expected[(target, check)] += 1
    return expected


def run_self_test() -> tuple[bool, list[str]]:
    """Lint the fixture; return (ok, human-readable report lines)."""
    from repro.lint import all_checkers, lint_modules

    module = SourceModule(path="<lint-self-test>", source=FIXTURE,
                          module=FIXTURE_MODULE)
    findings = lint_modules([module], all_checkers())
    actual = Counter((f.line, f.check) for f in findings)
    expected = expected_findings()
    lines = []
    for line, check in sorted(expected - actual):
        lines.append(f"MISSING: expected {check} at fixture line {line} "
                     f"(checker gone dead?)")
    for line, check in sorted(actual - expected):
        message = next(f.message for f in findings
                       if (f.line, f.check) == (line, check))
        lines.append(f"UNEXPECTED: {check} at fixture line {line}: {message}")
    ok = not lines
    checks = sorted({check for _, check in expected})
    lines.append(f"self-test {'OK' if ok else 'FAIL'}: "
                 f"{sum(expected.values())} expected findings across "
                 f"{len(checks)} checks ({', '.join(checks)})")
    return ok, lines
