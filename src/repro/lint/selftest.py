"""`repro lint --self-test`: prove every checker still fires.

A checker that silently stops matching is worse than no checker — the
gate keeps passing while the invariant rots. The self-test runs the
full checker set (per-module *and* whole-program) against a bundled
fixture bundle of known violations and compares the findings against
expectations *written inline in the fixtures themselves*
(``# expect: DET001`` on the offending line, or ``# expect-next:
LNT001`` on the line before when the offending line already carries a
suppression comment). Any drift — a missing finding, an extra finding,
a moved line — fails the self-test.

The bundle is multi-module on purpose: DET005's cross-layer draw and
RES001's caller-leak only exist *between* modules, so a single-file
fixture could never prove the whole-program phase is alive.
"""

from __future__ import annotations

import re
from collections import Counter

from repro.lint.framework import SourceModule

#: Expectation markers inside the fixtures.
_MARKER_RE = re.compile(r"#\s*expect(-next)?:\s*([A-Z0-9_]+(?:,[A-Z0-9_]+)*)")

#: The original fixture pretends to live in the ``sim`` layer so that
#: upward imports (telemetry, engine) violate ARCH001 — and so the
#: module is a domain root for the CONC checkers.
FIXTURE = '''\
"""Known-violation fixture; compiled by the self-test, never imported."""
import json
import random
import time
from datetime import datetime

import numpy as np

from repro.telemetry.export import canonical_json  # expect: ARCH001
from repro.engine.plan import PhysicalPlan  # expect: ARCH001


def wall_clock():
    started = time.time()  # expect: DET001
    time.sleep(0.01)  # expect: DET001
    return started, datetime.now()  # expect: DET001


def unseeded(n):
    jitter = random.random()  # expect: DET002
    noise = np.random.rand(n)  # expect: DET002
    good = np.random.default_rng(7).random()
    return jitter, noise, good


def ordering(events):
    pending = {event.key for event in events}
    for key in pending:  # expect: DET003
        print(key)
    for event in set(events):  # expect: DET003
        print(event)
    ordered = sorted(set(events))
    return ordered, list({1, 2, 3})  # expect: DET003


def tiebreak(items):
    items.sort(key=id)  # expect: DET004
    return {id(item): item for item in items}  # expect: DET004


def export(payload):
    return json.dumps(payload)  # expect: ARCH002


def suppressed_export(payload):
    # A well-formed suppression: check ids, then a mandatory reason.
    return json.dumps(payload)  # repro-lint: disable=ARCH002 fixture: compact wire format


def bare_suppression(payload):
    # expect-next: LNT001
    return json.dumps(payload)  # repro-lint: disable=ARCH002


# expect-next: LNT002
def stale():  # repro-lint: disable=DET001 the wall-clock call below was removed
    return 0


# -- shard-parallel shared state (CONC001/CONC002) ----------------------------

REGISTRY: dict = {}
_MODE = "idle"
_IMPORT_TIME_TABLE: dict = {}
_IMPORT_TIME_TABLE["constant"] = 1  # module scope: built once at import


def register(key, value):
    REGISTRY[key] = value  # expect: CONC001


def set_mode(mode):
    global _MODE
    _MODE = mode  # expect: CONC001


def local_state_is_fine(items):
    cache = {}
    for item in items:
        cache[item] = item
    return cache


class ShardState:
    def __init__(self):
        self._tenants = {}

    def admit(self, tenant):
        self._tenants[tenant] = tenant
        REGISTRY[tenant] = tenant  # expect: CONC001,CONC002

    def admit_local_only(self, tenant):
        self._tenants[tenant] = tenant


# -- resource lifecycle (RES001) ----------------------------------------------


def span_leak(recorder, env):
    span = recorder.start_span("work", env.now)  # expect: RES001
    return 1


def span_error_path_only(recorder, env, step):
    span = recorder.start_span("work", env.now)  # expect: RES001
    try:
        step()
    except RuntimeError:
        span.finish(env.now)
        raise
    return 2


def span_tidy(recorder, env, step):
    span = recorder.start_span("work", env.now)
    try:
        step()
    finally:
        span.finish(env.now)
    return 3


def span_handed_off(recorder, env, sink):
    span = recorder.start_span("work", env.now)
    sink(span)  # new owner: the obligation is theirs now
    return 4


def _open_helper(recorder, env):
    span = recorder.start_span("helper", env.now)
    return span


def caller_leak(recorder, env):
    span = _open_helper(recorder, env)  # expect: RES001
    return 0


def caller_tidy(recorder, env):
    span = _open_helper(recorder, env)
    span.finish(env.now)
    return 0


# -- swallowed exceptions (EXC001) --------------------------------------------


def swallow(step):
    try:
        step()
    except Exception:  # expect: EXC001
        pass


def swallow_bare(step):
    try:
        step()
    except:  # expect: EXC001
        ...


def narrow_is_fine(step):
    try:
        step()
    except ValueError:
        pass


def broad_but_handled(step, log):
    try:
        step()
    except Exception as error:
        log(error)
        raise
'''

#: RNG provenance fixture: generators owned by the sim layer.
FIXTURE_RNG = '''\
"""RNG-owner fixture for DET005; compiled, never imported."""
import random

import numpy as np

SHARED_GEN = np.random.default_rng(7)


def local_draws(n):
    rng = np.random.default_rng(n)
    return rng.random()


def same_module_draw():
    return SHARED_GEN.random()


def unstable(payload, name):
    a = np.random.default_rng(id(payload))  # expect: DET004,DET005
    b = random.Random(hash(name))  # expect: DET005
    return a, b
'''

#: Cross-layer fixture: engine code drawing from the sim layer's RNG.
FIXTURE_CROSS = '''\
"""Cross-layer-draw fixture for DET005; compiled, never imported."""
from repro.sim.lint_fixture_rng import SHARED_GEN


def jitter():
    return SHARED_GEN.random()  # expect: DET005


def stable_derived_seed(name):
    import hashlib
    raw = hashlib.sha256(name.encode("utf-8")).digest()
    return int.from_bytes(raw[:8], "little")
'''

#: The bundle: dotted module name -> fixture source.
FIXTURES: dict[str, str] = {
    "repro.sim.lint_fixture": FIXTURE,
    "repro.sim.lint_fixture_rng": FIXTURE_RNG,
    "repro.engine.lint_fixture": FIXTURE_CROSS,
}


def fixture_path(module: str) -> str:
    return f"<lint-self-test:{module}>"


def expected_findings() -> Counter:
    """Inline ``expect`` markers as a ``(path, line, check)`` multiset."""
    expected: Counter = Counter()
    for module in sorted(FIXTURES):
        path = fixture_path(module)
        for lineno, text in enumerate(FIXTURES[module].splitlines(),
                                      start=1):
            match = _MARKER_RE.search(text)
            if match is None:
                continue
            target = lineno + 1 if match.group(1) else lineno
            for check in match.group(2).split(","):
                expected[(path, target, check)] += 1
    return expected


def run_self_test() -> tuple[bool, list[str]]:
    """Lint the bundle; return (ok, human-readable report lines)."""
    from repro.lint import all_checkers, all_project_checkers, lint_bundle

    modules = [SourceModule(path=fixture_path(module),
                            source=FIXTURES[module], module=module)
               for module in sorted(FIXTURES)]
    findings = lint_bundle(modules, all_checkers(),
                           all_project_checkers())
    actual = Counter((f.path, f.line, f.check) for f in findings)
    expected = expected_findings()
    lines = []
    for path, line, check in sorted(expected - actual):
        lines.append(f"MISSING: expected {check} at {path}:{line} "
                     f"(checker gone dead?)")
    for path, line, check in sorted(actual - expected):
        message = next(f.message for f in findings
                       if (f.path, f.line, f.check) == (path, line, check))
        lines.append(f"UNEXPECTED: {check} at {path}:{line}: {message}")
    ok = not lines
    checks = sorted({check for _, _, check in expected})
    lines.append(f"self-test {'OK' if ok else 'FAIL'}: "
                 f"{sum(expected.values())} expected findings across "
                 f"{len(checks)} checks in {len(FIXTURES)} fixture "
                 f"module(s) ({', '.join(checks)})")
    return ok, lines
