"""CONC001/CONC002 — shard-parallel shared-state hazards.

ROADMAP item 5 commits to running independent shard/region domains as
parallel event loops with a deterministic merge. The whole plan rests
on domains sharing *nothing* mutable: a module global written from
handler code is a data race the day two domains run on separate
threads, and a nondeterminism source even under cooperative
interleaving (merge order decides who wrote last). These checkers make
the no-shared-state rule mechanical *before* the kernel is
parallelized, so every violation is found while it is still cheap.

Reachability is computed over the import graph: a module that imports
``repro.sim`` or ``repro.shard`` hosts event-handler code, and
everything *it* imports also runs inside a domain's event loop.
Module-scope mutations (building a constant table at import time) are
exempt — imports happen once, before any domain exists.
"""

from __future__ import annotations

from typing import Iterator

from repro.lint.framework import Finding
from repro.lint.project import ProjectChecker, ProjectIndex


class SharedStateChecker(ProjectChecker):
    """CONC001 — module globals mutated from domain-reachable code."""

    id = "CONC001"
    title = "shard-parallel shared mutable state"
    severity = "warning"
    rationale = (
        "Module globals written from code reachable by repro.shard / "
        "repro.sim event handlers are shared across every future "
        "shard-parallel domain: a data race under real parallelism, "
        "and a merge-order nondeterminism source before that. State a "
        "domain mutates must live on an object the domain owns "
        "(runtime, environment, router) so each domain gets its own.")
    example_bad = (
        "_CACHE: dict[str, Plan] = {}\n"
        "def compile(runtime, text):\n"
        "    _CACHE[text] = parse(text)   # shared across domains\n")
    example_good = (
        "class Runtime:\n"
        "    def __init__(self):\n"
        "        self.plan_cache: dict[str, Plan] = {}\n"
        "def compile(runtime, text):\n"
        "    runtime.plan_cache[text] = parse(text)  # domain-owned\n")

    def check_project(self, index: ProjectIndex) -> Iterator[Finding]:
        for name in sorted(index.domain_reachable):
            module_index = index.modules[name]
            for site in module_index["global_mutations"]:
                what = ("rebound" if site["kind"] == "rebind"
                        else "mutated in place")
                yield self.finding(
                    module_index, site,
                    f"module-global '{site['name']}' is {what} in "
                    f"'{site['scope']}', and module '{name}' is "
                    f"reachable from shard/sim event handlers — "
                    f"shard-parallel domains would share (and race on) "
                    f"it; move the state onto a domain-owned object")


class CrossDomainAliasChecker(ProjectChecker):
    """CONC002 — objects in per-shard structures escaping to globals."""

    id = "CONC002"
    title = "cross-domain aliasing"
    severity = "warning"
    rationale = (
        "An object registered in a per-shard/per-instance structure "
        "and *also* published in a module-global registry is aliased "
        "across domain boundaries: the global lets any domain reach "
        "into another domain's object, defeating the isolation that "
        "makes parallel simulation deterministic. Keep each object in "
        "exactly one domain's structures; cross-domain lookups go "
        "through an immutable directory or message passing.")
    example_bad = (
        "_ALL_TENANTS: dict[str, Tenant] = {}\n"
        "class Shard:\n"
        "    def admit(self, tenant):\n"
        "        self._tenants[tenant.key] = tenant\n"
        "        _ALL_TENANTS[tenant.key] = tenant  # escapes the shard\n")
    example_good = (
        "class Shard:\n"
        "    def admit(self, tenant):\n"
        "        self._tenants[tenant.key] = tenant\n"
        "# fleet-wide views aggregate over shards on demand\n")

    def check_project(self, index: ProjectIndex) -> Iterator[Finding]:
        for name in sorted(index.domain_reachable):
            module_index = index.modules[name]
            by_scope: dict[str, list[dict]] = {}
            for site in module_index["alias_stores"]:
                by_scope.setdefault(site["scope"], []).append(site)
            for scope in sorted(by_scope):
                sites = by_scope[scope]
                instance_values = {site["value"]: site for site in sites
                                   if site["kind"] == "instance"}
                for site in sites:
                    if site["kind"] != "global":
                        continue
                    twin = instance_values.get(site["value"])
                    if twin is None:
                        continue
                    yield self.finding(
                        module_index, site,
                        f"'{site['value']}' is registered in per-shard "
                        f"structure '{twin['container']}' and also "
                        f"escapes into module-global "
                        f"'{site['container']}' (in '{scope}'); the "
                        f"global aliases the object across shard "
                        f"domains — keep it domain-local")
