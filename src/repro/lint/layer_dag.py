"""The layering contract: which package may import which (ARCH001 data).

This is the single source of truth for the codebase's layer DAG. A
module is assigned to a layer by the *most specific* prefix match in
:data:`LAYERS`; an import is legal iff the target's layer is the
importer's own layer or one named in :data:`ALLOWED` for it.

The load-bearing rules, from the bottom up:

* ``sim`` is the deterministic kernel — it imports nothing but
  ``units``; telemetry attaches through ``Environment.set_monitor``,
  never through an import.
* ``telemetry`` is a passive leaf every layer may observe through, but
  it must never import the things it observes.
* ``core`` (the experiment driver) never imports ``engine``,
  ``serve``, ``chaos``, or ``workloads``; higher layers register
  themselves with the driver (``Driver.register_kind``).
* Package ``__init__`` re-export facades count as the *highest* layer
  they re-export (``repro.serve``'s facade pulls in
  ``serve.service``, so importing the facade is a ``service``-layer
  dependency; depend on ``repro.serve.gateway`` etc. directly from
  lower layers).

Pure data — keep it free of imports and logic so the DAG stays
reviewable in one diff hunk.
"""

from __future__ import annotations

#: Layer name → module-name prefixes assigned to it. ``repro`` matches
#: the bare package ``__init__`` only (an unknown ``repro.<new>``
#: package is an ARCH001 finding until it is added here).
LAYERS: dict[str, tuple[str, ...]] = {
    "util": ("repro", "repro.units"),
    "analysis": ("repro.analysis",),
    "telemetry": ("repro.telemetry",),
    "formats": ("repro.formats",),
    "sim": ("repro.sim",),
    "lint": ("repro.lint",),
    "network": ("repro.network",),
    "storage": ("repro.storage",),
    "pricing": ("repro.pricing",),
    "datagen": ("repro.datagen",),
    "faas": ("repro.faas",),
    "iaas": ("repro.iaas",),
    "chaos": ("repro.chaos",),
    "futures": ("repro.futures",),
    "engine": ("repro.engine",),
    "core": ("repro.core",),
    "serve": ("repro.serve.gateway", "repro.serve.scheduler",
              "repro.serve.metrics", "repro.serve.warm_pool"),
    "workloads": ("repro.workloads",),
    "shard": ("repro.shard",),
    #: The obs core (SLO engine, sampler, flight recorder, profiler) is
    #: passive: it observes timestamps and spans, never the simulation.
    "obs": ("repro.obs",),
    #: Observed-replay scenarios sit above the sharded fabric (the
    #: facade stays obs-layer; ``repro.obs.scenario`` must be imported
    #: directly, like ``repro.serve.service``).
    "obsflow": ("repro.obs.scenario",),
    "service": ("repro.serve", "repro.serve.service", "repro.chaos.runner"),
    "bench": ("repro.bench",),
    "app": ("repro.cli", "repro.__main__"),
}

#: Layer → layers it may import (own layer is always allowed).
ALLOWED: dict[str, tuple[str, ...]] = {
    "util": (),
    "analysis": ("util",),
    "telemetry": ("util",),
    "formats": ("util",),
    "sim": ("util",),
    "lint": ("util", "telemetry"),
    "network": ("util", "sim", "telemetry"),
    "storage": ("util", "sim", "network", "telemetry"),
    "pricing": ("util", "storage"),
    "datagen": ("util", "formats", "storage"),
    "faas": ("util", "sim", "network", "pricing", "telemetry"),
    "iaas": ("util", "sim", "network", "pricing", "faas"),
    "chaos": ("util", "sim", "storage", "telemetry"),
    "futures": ("util", "sim", "network", "storage", "pricing", "faas",
                "chaos", "telemetry"),
    "engine": ("util", "sim", "network", "storage", "formats", "datagen",
               "faas", "pricing", "telemetry"),
    "core": ("util", "sim", "network", "storage", "faas", "iaas",
             "pricing", "telemetry"),
    "serve": ("util", "analysis", "pricing", "telemetry"),
    "workloads": ("util", "analysis", "sim", "datagen", "faas", "iaas",
                  "pricing", "core", "engine", "serve", "telemetry"),
    "shard": ("util", "analysis", "sim", "chaos", "serve", "workloads",
              "telemetry"),
    "obs": ("util", "analysis", "pricing", "telemetry"),
    "obsflow": ("util", "analysis", "sim", "chaos", "serve", "workloads",
                "shard", "pricing", "obs", "telemetry"),
    "service": ("util", "analysis", "sim", "network", "storage", "formats",
                "datagen", "faas", "iaas", "pricing", "chaos", "engine",
                "core", "serve", "workloads", "obs", "telemetry"),
    "bench": ("util", "analysis", "sim", "network", "storage", "formats",
              "datagen", "faas", "iaas", "pricing", "chaos", "futures",
              "engine", "core", "serve", "workloads", "shard", "service",
              "telemetry"),
    "app": ("util", "analysis", "sim", "network", "storage", "formats",
            "datagen", "faas", "iaas", "pricing", "chaos", "futures",
            "engine", "core", "serve", "workloads", "shard", "obs",
            "obsflow", "service", "bench", "lint", "telemetry"),
}
