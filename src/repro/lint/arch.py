"""ARCH001/ARCH002: architecture checkers.

ARCH001 enforces the layer DAG declared in :mod:`repro.lint.layer_dag`
on *every* import — module-level and deferred alike (a function-level
import dodges the import-time cycle but not the coupling). ARCH002
keeps artifact serialization on the one byte-stable JSON writer.
"""

from __future__ import annotations

import ast
from typing import Iterator, Optional

from repro.lint.determinism import import_aliases, resolve_dotted
from repro.lint.framework import Checker, Finding, SourceModule
from repro.lint.layer_dag import ALLOWED, LAYERS

#: The one module allowed to call ``json.dumps`` directly: it *is* the
#: canonical writer.
CANONICAL_WRITER = "repro.telemetry.export"


def layer_of(module: str) -> Optional[str]:
    """Layer for a dotted module name (most specific prefix wins).

    The bare ``repro`` prefix matches only the package ``__init__``
    itself, so an unmapped ``repro.<new>`` package resolves to ``None``
    — forcing every new package into the DAG before it can import
    anything.
    """
    best_prefix, best_layer = "", None
    for layer in sorted(LAYERS):
        for prefix in LAYERS[layer]:
            if module == prefix or module.startswith(prefix + "."):
                if len(prefix) > len(best_prefix):
                    best_prefix, best_layer = prefix, layer
    if best_prefix == "repro" and module != "repro":
        return None
    return best_layer


def _import_targets(node: ast.AST, module: Optional[str],
                    is_package_init: bool) -> list[str]:
    """Dotted ``repro.*`` modules an import statement reaches for.

    For ``from pkg import name`` the more specific ``pkg.name`` is
    preferred when the DAG maps it (so ``from repro import units`` is a
    ``util`` dependency, not a dependency on the root facade).
    """
    targets: list[str] = []
    if isinstance(node, ast.Import):
        targets = [alias.name for alias in node.names]
    elif isinstance(node, ast.ImportFrom):
        base = node.module or ""
        if node.level > 0:
            if module is None:
                return []
            parts = module.split(".")
            package = parts if is_package_init else parts[:-1]
            drop = node.level - 1
            if drop > len(package):
                return []
            prefix = package[:len(package) - drop]
            base = ".".join(prefix + ([node.module] if node.module else []))
        base_layer = layer_of(base) if base else None
        for alias in node.names:
            specific = f"{base}.{alias.name}"
            specific_layer = layer_of(specific) if alias.name != "*" else None
            # `from repro import units` names the submodule, not the
            # facade: attribute the edge to the more specific layer.
            if specific_layer is not None and specific_layer != base_layer:
                targets.append(specific)
            else:
                targets.append(base)
    return [t for t in targets if t == "repro" or t.startswith("repro.")]


class LayerChecker(Checker):
    """ARCH001 — imports must respect the declared layer DAG."""

    id = "ARCH001"
    title = "layering contract"
    rationale = (
        "Imports may only point at the same or a lower layer of the "
        "declared DAG (repro.lint.layer_dag). An upward import turns "
        "the layering into a suggestion and eventually into an import "
        "cycle.")
    example_bad = ("# in repro/sim/kernel.py (sim layer)\n"
                   "from repro.engine.plan import PhysicalPlan")
    example_good = ("# in repro/engine/plan.py (engine layer)\n"
                    "from repro.sim import Environment")

    def check(self, module: SourceModule) -> Iterator[Finding]:
        if module.module is None or not (
                module.module == "repro"
                or module.module.startswith("repro.")):
            return
        source_layer = layer_of(module.module)
        if source_layer is None:
            yield module.finding(
                module.tree, self.id,
                f"module '{module.module}' is not assigned to any layer; "
                f"add it to repro.lint.layer_dag.LAYERS")
            return
        allowed = frozenset(ALLOWED[source_layer]) | {source_layer}
        is_init = module.path.endswith("__init__.py")
        for node in ast.walk(module.tree):
            if not isinstance(node, (ast.Import, ast.ImportFrom)):
                continue
            for target in _import_targets(node, module.module, is_init):
                target_layer = layer_of(target)
                if target_layer is None:
                    yield module.finding(
                        node, self.id,
                        f"import of '{target}' resolves to no layer; add "
                        f"it to repro.lint.layer_dag.LAYERS")
                elif target_layer not in allowed:
                    yield module.finding(
                        node, self.id,
                        f"layer '{source_layer}' may not import layer "
                        f"'{target_layer}' (module '{target}'); allowed "
                        f"layers: {', '.join(sorted(allowed))}")


class CanonicalJsonChecker(Checker):
    """ARCH002 — artifact JSON goes through ``canonical_json``."""

    id = "ARCH002"
    title = "canonical-JSON discipline"
    rationale = (
        "Committed artifacts must be byte-stable so golden-file diffs "
        "mean something. Raw json.dump(s) floats key order and "
        "formatting; every artifact goes through "
        "repro.telemetry.export.canonical_json.")
    example_bad = "report.write_text(json.dumps(payload))"
    example_good = "report.write_text(canonical_json(payload))"

    def check(self, module: SourceModule) -> Iterator[Finding]:
        if module.module == CANONICAL_WRITER:
            return
        aliases = import_aliases(module.tree)
        for node in ast.walk(module.tree):
            if not isinstance(node, ast.Call):
                continue
            dotted = resolve_dotted(node.func, aliases)
            if dotted in ("json.dump", "json.dumps"):
                yield module.finding(
                    node, self.id,
                    f"direct '{dotted}()' skips the byte-stable writer; "
                    f"serialize artifacts via "
                    f"repro.telemetry.export.canonical_json")
