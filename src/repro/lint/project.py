"""Phase 1 of the whole-program analysis: the project index.

Per-module checkers (:mod:`repro.lint.determinism`, ``arch``) see one
file at a time and are blind to exactly the bugs that threaten the
shard-parallel kernel plan (ROADMAP item 5): an RNG constructed in one
layer and drawn from in another, a module global mutated from code that
runs inside two shard domains, a span opened in one function and leaked
by its caller. The two-phase design fixes that:

* **Phase 1** (:class:`ModuleIndexer`) walks every file's AST exactly
  once and distills it into a :class:`ModuleIndex` — a small, plain-JSON
  summary: symbol table, ``repro.*`` import targets, RNG construction
  and draw sites, module-global and class-attribute mutation sites,
  resource open/close/escape sites per function, and bound call edges.
  Because the summary is pure data, the incremental cache
  (:mod:`repro.lint.cache`) can store it keyed by file SHA and skip the
  parse entirely on unchanged files.
* **Phase 2** (:class:`ProjectIndex` + :class:`ProjectChecker`
  subclasses) stitches the summaries into cross-module structures — an
  import graph with domain reachability, an RNG provenance map, a
  returns-open-resource fixpoint over the call graph — and emits
  :class:`~repro.lint.framework.Finding` rows through the same
  suppression / baseline / canonical-ordering pipeline as phase 1.

Phase 2 is pure function of the set of :class:`ModuleIndex` values, so
lint output is independent of file discovery order and of cache state —
a property test pins this.
"""

from __future__ import annotations

import ast
from pathlib import Path
from typing import Iterable, Iterator, Optional

from repro.lint.determinism import WALL_CLOCK_CALLS, import_aliases, \
    resolve_dotted
from repro.lint.framework import (
    Checker,
    Finding,
    SourceModule,
    Suppression,
    analyze_module,
    apply_suppressions,
    iter_python_files,
)

#: Calls that construct a *local, seedable* RNG object. Provenance of
#: these objects is what DET005 tracks.
RNG_CONSTRUCTORS = frozenset({
    "random.Random",
    "numpy.random.default_rng",
    "numpy.random.Generator",
    "repro.sim.rng.RandomStreams",
})

#: Methods that consume randomness from an RNG object. Drawing through
#: one of these on a generator that lives in another layer is a DET005
#: cross-layer draw.
RNG_DRAW_METHODS = frozenset({
    "random", "randint", "randrange", "uniform", "triangular",
    "choice", "choices", "sample", "shuffle", "normal", "gauss",
    "lognormvariate", "expovariate", "betavariate", "gammavariate",
    "integers", "standard_normal", "exponential", "poisson",
    "permutation", "permuted", "bytes", "binomial", "geometric",
    "zipf", "stream",
})

#: Method names that *open* a resource the caller must settle, mapped
#: to the method names that settle it. ``start_span``/``start_trace``
#: return live spans (``repro.telemetry.recorder``); ``acquire`` /
#: ``open_resource`` cover sim resources and fixture code.
RESOURCE_PROTOCOLS: dict[str, tuple[str, ...]] = {
    "start_span": ("finish",),
    "start_trace": ("finish",),
    "acquire": ("release",),
    "open_resource": ("close", "drain"),
}

#: Every method name that settles *some* protocol — used when the open
#: happened in a callee and the concrete protocol is unknown here.
RESOURCE_CLOSERS = frozenset(
    closer for closers in RESOURCE_PROTOCOLS.values() for closer in closers)

#: Modules whose own internals implement the resource protocols (the
#: recorder hands out spans; it does not leak them).
RESOURCE_HOME_PREFIXES = ("repro.telemetry",)

#: Method calls that mutate a container in place.
MUTATING_METHODS = frozenset({
    "append", "appendleft", "add", "update", "setdefault", "insert",
    "extend", "extendleft", "remove", "discard", "pop", "popitem",
    "popleft", "clear", "__setitem__",
})

#: Calls that build a mutable container.
MUTABLE_FACTORIES = frozenset({
    "dict", "list", "set", "collections.defaultdict", "collections.deque",
    "collections.Counter", "collections.OrderedDict",
})


def _is_mutable_literal(node: ast.expr, aliases: dict[str, str]) -> bool:
    """Whether a module/class-level binding is a mutable container."""
    if isinstance(node, (ast.Dict, ast.List, ast.Set, ast.DictComp,
                         ast.ListComp, ast.SetComp)):
        return True
    if isinstance(node, ast.Call):
        dotted = resolve_dotted(node.func, aliases)
        if dotted in MUTABLE_FACTORIES:
            return True
        if isinstance(node.func, ast.Name) \
                and node.func.id in MUTABLE_FACTORIES:
            return True
    return False


def _call_name(node: ast.Call, aliases: dict[str, str],
               local_defs: frozenset[str], module: Optional[str]
               ) -> Optional[str]:
    """Best-effort dotted target of a call, for the call graph.

    A bare name defined in this module resolves to
    ``<module>.<name>``; an import-bound name resolves through the
    alias table; receiver-based calls (``self.f()``) stay unresolved.
    """
    if isinstance(node.func, ast.Name):
        if node.func.id in local_defs and module:
            return f"{module}.{node.func.id}"
        return aliases.get(node.func.id)
    return resolve_dotted(node.func, aliases)


def _contains_unstable_seed(node: ast.expr, aliases: dict[str, str]
                            ) -> Optional[str]:
    """The unstable source inside a seed expression, if any.

    ``hash()`` is salted per process (PYTHONHASHSEED), ``id()`` is a
    memory address, and wall clocks are wall clocks — none yields the
    same derived seed on the next run.
    """
    for child in ast.walk(node):
        if not isinstance(child, ast.Call):
            continue
        if isinstance(child.func, ast.Name) and child.func.id in ("hash",
                                                                  "id"):
            return f"{child.func.id}()"
        dotted = resolve_dotted(child.func, aliases)
        if dotted in WALL_CLOCK_CALLS:
            return f"{dotted}()"
    return None


class _FunctionSummary:
    """Mutable scratch record for one function scope (JSON-ready)."""

    def __init__(self, qualname: str, lineno: int) -> None:
        self.data = {
            "qualname": qualname,
            "line": lineno,
            # {"name","line","col","method"} — resource open sites.
            "opens": [],
            # name -> sorted list of contexts ("plain" | "except").
            "closes": {},
            # {"name","target","line","col"} — `x = f(...)` call edges.
            "bound_calls": [],
            # Names that leave the function other than by return:
            # stored into attributes/containers or passed to calls.
            "stored": [],
            # Names returned (or yielded) to the caller.
            "returned": [],
            # Names bound by `with ... as name` (self-settling).
            "with_names": [],
            # Names assigned in this scope (locals shadow globals).
            "assigned": [],
            # Names declared `global` in this scope.
            "globals": [],
        }


class ModuleIndexer(ast.NodeVisitor):
    """One AST pass extracting everything phase 2 needs."""

    def __init__(self, module: SourceModule) -> None:
        self.module = module
        self.aliases = import_aliases(module.tree)
        self.local_defs = frozenset(
            node.name for node in module.tree.body
            if isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef,
                                 ast.ClassDef)))
        self.index = {
            "path": module.path,
            "module": module.module,
            # Sorted dotted repro.* modules this module reaches for.
            "imports": [],
            # Module-level name -> line of an RNG-constructor binding.
            "rng_globals": {},
            # {"target","line","col","method"} — draws through an
            # import-bound dotted chain.
            "rng_draws": [],
            # {"line","col","ctor","via"} — unstable derived seeds.
            "unstable_seeds": [],
            # Module-level name -> line of a mutable-container binding.
            "mutable_globals": {},
            # {"name","scope","line","col","kind"} with kind
            # "mutate" (in-place) or "rebind" (global statement).
            "global_mutations": [],
            # {"cls","attr","line"} — mutable class-level attributes.
            "class_mutables": [],
            # {"value","container","kind","line","col","scope"} with
            # kind "global" or "instance" — aliasing store sites.
            "alias_stores": [],
            # qualname -> function summary (resource lifecycle).
            "functions": {},
        }
        self._imports: set[str] = set()
        self._scope: list[str] = []
        self._class: list[str] = []
        self._functions: list[_FunctionSummary] = []

    # -- scope bookkeeping -----------------------------------------------------

    @property
    def _in_function(self) -> bool:
        return bool(self._functions)

    @property
    def _fn(self) -> _FunctionSummary:
        return self._functions[-1]

    def _scope_name(self) -> str:
        return ".".join(self._scope) if self._scope else "<module>"

    # -- visitors --------------------------------------------------------------

    def visit_Import(self, node: ast.Import) -> None:
        for alias in node.names:
            if alias.name == "repro" or alias.name.startswith("repro."):
                self._imports.add(alias.name)
        self.generic_visit(node)

    def visit_ImportFrom(self, node: ast.ImportFrom) -> None:
        base = node.module or ""
        if node.level == 0 and (base == "repro"
                                or base.startswith("repro.")):
            for alias in node.names:
                if alias.name == "*":
                    self._imports.add(base)
                else:
                    self._imports.add(f"{base}.{alias.name}")
        self.generic_visit(node)

    def visit_ClassDef(self, node: ast.ClassDef) -> None:
        self._class.append(node.name)
        self._scope.append(node.name)
        for statement in node.body:
            if isinstance(statement, ast.Assign) \
                    and not self._in_function:
                for target in statement.targets:
                    if isinstance(target, ast.Name) \
                            and _is_mutable_literal(statement.value,
                                                    self.aliases):
                        self.index["class_mutables"].append(
                            {"cls": node.name, "attr": target.id,
                             "line": statement.lineno})
        self.generic_visit(node)
        self._scope.pop()
        self._class.pop()

    def _visit_function(self, node) -> None:
        self._scope.append(node.name)
        qualname = self._scope_name()
        summary = _FunctionSummary(qualname, node.lineno)
        summary.data["assigned"].extend(
            arg.arg for arg in (node.args.posonlyargs + node.args.args
                                + node.args.kwonlyargs))
        for arg in (node.args.vararg, node.args.kwarg):
            if arg is not None:
                summary.data["assigned"].append(arg.arg)
        self._functions.append(summary)
        self.generic_visit(node)
        self._functions.pop()
        self.index["functions"][qualname] = summary.data
        self._scope.pop()

    visit_FunctionDef = _visit_function
    visit_AsyncFunctionDef = _visit_function

    def visit_Global(self, node: ast.Global) -> None:
        if self._in_function:
            self._fn.data["globals"].extend(node.names)
        self.generic_visit(node)

    def visit_Assign(self, node: ast.Assign) -> None:
        self._record_binding(node.targets, node.value, node)
        self.generic_visit(node)

    def visit_AnnAssign(self, node: ast.AnnAssign) -> None:
        if node.value is not None:
            self._record_binding([node.target], node.value, node)
        self.generic_visit(node)

    def visit_AugAssign(self, node: ast.AugAssign) -> None:
        if isinstance(node.target, ast.Name) and self._in_function \
                and node.target.id in self._fn.data["globals"]:
            self._record_global_mutation(node.target.id, node, "mutate")
        self.generic_visit(node)

    def visit_With(self, node: ast.With) -> None:
        self._record_with(node)
        self.generic_visit(node)

    def visit_AsyncWith(self, node: ast.AsyncWith) -> None:
        self._record_with(node)
        self.generic_visit(node)

    def _record_with(self, node) -> None:
        if not self._in_function:
            return
        for item in node.items:
            if isinstance(item.optional_vars, ast.Name):
                self._fn.data["with_names"].append(item.optional_vars.id)

    def visit_Return(self, node: ast.Return) -> None:
        if self._in_function and isinstance(node.value, ast.Name):
            self._fn.data["returned"].append(node.value.id)
        self.generic_visit(node)

    def visit_Yield(self, node: ast.Yield) -> None:
        if self._in_function and isinstance(node.value, ast.Name):
            self._fn.data["returned"].append(node.value.id)
        self.generic_visit(node)

    def visit_Call(self, node: ast.Call) -> None:
        self._record_rng_call(node)
        self._record_resource_call(node)
        self._record_mutation_call(node)
        if self._in_function:
            # Any name passed as an argument escapes our local view.
            for arg in list(node.args) + [kw.value for kw in node.keywords]:
                if isinstance(arg, ast.Name):
                    self._fn.data["stored"].append(arg.id)
                elif isinstance(arg, ast.Starred) \
                        and isinstance(arg.value, ast.Name):
                    self._fn.data["stored"].append(arg.value.id)
        self.generic_visit(node)

    def visit_Subscript(self, node: ast.Subscript) -> None:
        if isinstance(node.ctx, (ast.Store, ast.Del)):
            self._record_subscript_store(node)
        self.generic_visit(node)

    # -- recording helpers -----------------------------------------------------

    def _record_binding(self, targets: list, value: ast.expr,
                        node: ast.stmt) -> None:
        names = [t.id for t in targets if isinstance(t, ast.Name)]
        if not self._in_function and not self._class:
            # Module scope: classify the binding.
            for name in names:
                if _is_mutable_literal(value, self.aliases):
                    self.index["mutable_globals"].setdefault(
                        name, node.lineno)
                if isinstance(value, ast.Call):
                    dotted = resolve_dotted(value.func, self.aliases)
                    if dotted in RNG_CONSTRUCTORS:
                        self.index["rng_globals"].setdefault(
                            name, node.lineno)
        if self._in_function:
            fn = self._fn.data
            fn["assigned"].extend(names)
            for name in names:
                if name in fn["globals"]:
                    self._record_global_mutation(name, node, "rebind")
            if isinstance(value, ast.Call) and len(names) == 1:
                target = _call_name(value, self.aliases, self.local_defs,
                                    self.module.module)
                if target is not None:
                    fn["bound_calls"].append(
                        {"name": names[0], "target": target,
                         "line": node.lineno,
                         "col": node.col_offset + 1})
            if isinstance(value, ast.Name):
                # `self.x = name` / `container = name` style aliasing.
                for target in targets:
                    if isinstance(target, (ast.Attribute, ast.Subscript)):
                        fn["stored"].append(value.id)
        # Attribute/subscript targets of a Name value: aliasing stores.
        for target in targets:
            if isinstance(target, ast.Subscript) \
                    and isinstance(value, ast.Name):
                self._record_alias_store(target, value.id, node)

    def _record_subscript_store(self, node: ast.Subscript) -> None:
        base = node.value
        if isinstance(base, ast.Name) and self._in_function:
            if self._is_global_container(base.id):
                self._record_global_mutation(base.id, node, "mutate")

    def _is_global_container(self, name: str) -> bool:
        """Whether ``name`` denotes a module-level mutable, not a local."""
        if name not in self.index["mutable_globals"]:
            return False
        fn = self._fn.data
        return name not in fn["assigned"] or name in fn["globals"]

    def _record_global_mutation(self, name: str, node, kind: str) -> None:
        self.index["global_mutations"].append(
            {"name": name, "scope": self._scope_name(),
             "line": node.lineno, "col": node.col_offset + 1,
             "kind": kind})

    def _record_alias_store(self, target, value_name: str,
                            node) -> None:
        """A plain name stored into a container: global or instance."""
        if not self._in_function:
            return
        base = target.value
        if isinstance(base, ast.Name) and self._is_global_container(base.id):
            self.index["alias_stores"].append(
                {"value": value_name, "container": base.id,
                 "kind": "global", "scope": self._scope_name(),
                 "line": node.lineno, "col": node.col_offset + 1})
        elif isinstance(base, ast.Attribute) \
                and isinstance(base.value, ast.Name) \
                and base.value.id in ("self", "cls"):
            self.index["alias_stores"].append(
                {"value": value_name, "container": f"self.{base.attr}",
                 "kind": "instance", "scope": self._scope_name(),
                 "line": node.lineno, "col": node.col_offset + 1})

    def _record_rng_call(self, node: ast.Call) -> None:
        dotted = resolve_dotted(node.func, self.aliases)
        ctor = None
        if dotted in RNG_CONSTRUCTORS:
            ctor = dotted
        elif isinstance(node.func, ast.Name) \
                and self.aliases.get(node.func.id) in RNG_CONSTRUCTORS:
            ctor = self.aliases[node.func.id]
        if ctor is not None:
            seed_exprs = list(node.args) + [kw.value for kw in node.keywords]
            for expr in seed_exprs:
                via = _contains_unstable_seed(expr, self.aliases)
                if via is not None:
                    self.index["unstable_seeds"].append(
                        {"line": node.lineno, "col": node.col_offset + 1,
                         "ctor": ctor, "via": via})
                    break
        # Draw through an import-bound dotted chain, e.g.
        # `from repro.x import GEN; GEN.random()`.
        if isinstance(node.func, ast.Attribute) \
                and node.func.attr in RNG_DRAW_METHODS:
            target = resolve_dotted(node.func.value, self.aliases)
            if target is not None and target.startswith("repro."):
                self.index["rng_draws"].append(
                    {"target": target, "method": node.func.attr,
                     "line": node.lineno, "col": node.col_offset + 1})

    def _record_resource_call(self, node: ast.Call) -> None:
        if not self._in_function:
            return
        if not isinstance(node.func, ast.Attribute):
            return
        method = node.func.attr
        fn = self._fn.data
        if method in RESOURCE_CLOSERS \
                and isinstance(node.func.value, ast.Name):
            context = "except" if self._inside_except(node) else "plain"
            contexts = fn["closes"].setdefault(node.func.value.id, [])
            if context not in contexts:
                contexts.append(context)
                contexts.sort()

    def _record_mutation_call(self, node: ast.Call) -> None:
        if not self._in_function:
            return
        if not isinstance(node.func, ast.Attribute):
            return
        if node.func.attr not in MUTATING_METHODS:
            return
        base = node.func.value
        if isinstance(base, ast.Name) and self._is_global_container(base.id):
            self._record_global_mutation(base.id, node, "mutate")
            # `GLOBAL.append(name)` / `GLOBAL.add(name)`: aliasing store.
            if len(node.args) == 1 and isinstance(node.args[0], ast.Name):
                self.index["alias_stores"].append(
                    {"value": node.args[0].id, "container": base.id,
                     "kind": "global", "scope": self._scope_name(),
                     "line": node.lineno, "col": node.col_offset + 1})
        elif isinstance(base, ast.Attribute) \
                and isinstance(base.value, ast.Name) \
                and base.value.id in ("self", "cls") \
                and len(node.args) == 1 \
                and isinstance(node.args[0], ast.Name):
            self.index["alias_stores"].append(
                {"value": node.args[0].id,
                 "container": f"self.{base.attr}", "kind": "instance",
                 "scope": self._scope_name(),
                 "line": node.lineno, "col": node.col_offset + 1})

    # -- except tracking -------------------------------------------------------

    def visit_Try(self, node: ast.Try) -> None:
        # Mark statements lexically inside except handlers so close
        # calls found there count as error-path-only.
        for handler in node.handlers:
            for child in handler.body:
                for sub in ast.walk(child):
                    sub._repro_in_except = True  # type: ignore[attr-defined]
        self.generic_visit(node)

    @staticmethod
    def _inside_except(node: ast.AST) -> bool:
        return getattr(node, "_repro_in_except", False)

    # -- open-site pass (needs binding info, so runs at the end) ---------------

    def finish(self) -> dict:
        """Final per-module fixups; returns the JSON-ready index."""
        for fn in self.index["functions"].values():
            seen = {(site["name"], site["line"]) for site in fn["opens"]}
            for call in fn["bound_calls"]:
                dotted = call["target"]
                method = dotted.rsplit(".", 1)[-1]
                if method in RESOURCE_PROTOCOLS \
                        and (call["name"], call["line"]) not in seen:
                    fn["opens"].append(
                        {"name": call["name"], "method": method,
                         "line": call["line"], "col": call["col"]})
        self.index["imports"] = sorted(self._imports)
        return self.index


def build_module_index(module: SourceModule) -> dict:
    """Phase 1 for one module: the JSON-ready :class:`ModuleIndex`."""
    indexer = ModuleIndexer(module)
    indexer.visit(module.tree)
    # Bound resource opens come through method calls too
    # (`recorder.start_span(...)`), which _call_name cannot resolve;
    # collect them in a dedicated pass over the tree.
    _collect_method_opens(module, indexer)
    return indexer.finish()


def _collect_method_opens(module: SourceModule,
                          indexer: ModuleIndexer) -> None:
    """Record ``x = <recv>.start_span(...)``-style open sites."""

    class _Opens(ast.NodeVisitor):
        def __init__(self) -> None:
            self.scope: list[str] = []

        def _fn_data(self) -> Optional[dict]:
            qualname = ".".join(self.scope)
            return indexer.index["functions"].get(qualname)

        def _visit_scope(self, node) -> None:
            self.scope.append(node.name)
            self.generic_visit(node)
            self.scope.pop()

        visit_FunctionDef = _visit_scope
        visit_AsyncFunctionDef = _visit_scope
        visit_ClassDef = _visit_scope

        def visit_Assign(self, node: ast.Assign) -> None:
            self._record(node.targets, node.value, node)
            self.generic_visit(node)

        def visit_AnnAssign(self, node: ast.AnnAssign) -> None:
            if node.value is not None:
                self._record([node.target], node.value, node)
            self.generic_visit(node)

        def _record(self, targets, value, node) -> None:
            fn = self._fn_data()
            if fn is None or not isinstance(value, ast.Call):
                return
            if not isinstance(value.func, ast.Attribute):
                return
            method = value.func.attr
            if method not in RESOURCE_PROTOCOLS:
                return
            for target in targets:
                if isinstance(target, ast.Name):
                    fn["opens"].append(
                        {"name": target.id, "method": method,
                         "line": node.lineno,
                         "col": node.col_offset + 1})

    _Opens().visit(module.tree)


class ProjectIndex:
    """Phase 2 input: every module's index, stitched together.

    All derived structures are computed from sorted inputs so the index
    — and everything the project checkers emit — is independent of the
    order modules were discovered or loaded in.
    """

    #: Packages whose code runs inside simulation/shard event handlers.
    #: A module that imports them hosts handler code; everything *it*
    #: imports is then reachable from inside a domain's event loop.
    DOMAIN_PACKAGES = ("repro.sim", "repro.shard")

    def __init__(self, module_indexes: Iterable[dict]) -> None:
        self.modules: dict[str, dict] = {}
        self.by_path: dict[str, dict] = {}
        for index in module_indexes:
            self.by_path[index["path"]] = index
            if index["module"]:
                self.modules[index["module"]] = index
        self._module_names = sorted(self.modules)
        self.import_graph = self._build_import_graph()
        self.domain_reachable = self._domain_reachable()
        self.returns_open = self._returns_open_fixpoint()

    # -- name resolution -------------------------------------------------------

    def resolve_module(self, dotted: str) -> Optional[str]:
        """Longest known module that is a prefix of ``dotted``."""
        parts = dotted.split(".")
        for length in range(len(parts), 0, -1):
            candidate = ".".join(parts[:length])
            if candidate in self.modules:
                return candidate
        return None

    def split_symbol(self, dotted: str) -> tuple[Optional[str], str]:
        """Split ``repro.a.b.NAME`` into (module, remainder)."""
        module = self.resolve_module(dotted)
        if module is None:
            return None, dotted
        remainder = dotted[len(module):].lstrip(".")
        return module, remainder

    # -- import graph and reachability -----------------------------------------

    def _build_import_graph(self) -> dict[str, list[str]]:
        graph: dict[str, list[str]] = {}
        for name in self._module_names:
            targets = set()
            for dotted in self.modules[name]["imports"]:
                resolved = self.resolve_module(dotted)
                if resolved is not None and resolved != name:
                    targets.add(resolved)
            graph[name] = sorted(targets)
        return graph

    def _domain_reachable(self) -> frozenset[str]:
        """Modules whose code can run inside a shard/sim event domain."""
        roots = []
        for name in self._module_names:
            in_domain = any(name == pkg or name.startswith(pkg + ".")
                            for pkg in self.DOMAIN_PACKAGES)
            touches_domain = any(
                dotted == pkg or dotted.startswith(pkg + ".")
                for dotted in self.modules[name]["imports"]
                for pkg in self.DOMAIN_PACKAGES)
            if in_domain or touches_domain:
                roots.append(name)
        reachable: set[str] = set()
        stack = list(roots)
        while stack:
            name = stack.pop()
            if name in reachable:
                continue
            reachable.add(name)
            stack.extend(self.import_graph.get(name, ()))
        return frozenset(reachable)

    # -- resource fixpoint -----------------------------------------------------

    def _function_qualnames(self) -> Iterator[tuple[str, str, dict]]:
        for name in self._module_names:
            functions = self.modules[name]["functions"]
            for qualname in sorted(functions):
                yield name, qualname, functions[qualname]

    def _returns_open_fixpoint(self) -> frozenset[str]:
        """Fully-qualified functions that return a still-open resource.

        Seeded with functions whose own open's name is returned without
        a guaranteed close, then propagated along bound-call edges until
        stable: a caller that binds such a result and returns it passes
        the obligation further up.
        """
        returns_open: set[str] = set()
        for module, qualname, fn in self._function_qualnames():
            if self._is_resource_home(module):
                continue
            for site in fn["opens"]:
                if site["name"] in fn["returned"] \
                        and not fn["closes"].get(site["name"]):
                    returns_open.add(f"{module}.{qualname}")
        changed = True
        while changed:
            changed = False
            for module, qualname, fn in self._function_qualnames():
                full = f"{module}.{qualname}"
                if full in returns_open or self._is_resource_home(module):
                    continue
                for call in fn["bound_calls"]:
                    if call["target"] in returns_open \
                            and call["name"] in fn["returned"] \
                            and not fn["closes"].get(call["name"]):
                        returns_open.add(full)
                        changed = True
                        break
        return frozenset(returns_open)

    @staticmethod
    def _is_resource_home(module: str) -> bool:
        return any(module == prefix or module.startswith(prefix + ".")
                   for prefix in RESOURCE_HOME_PREFIXES)


class ProjectChecker:
    """Base class for phase-2 (whole-program) checkers."""

    id: str = "PRJ000"
    title: str = ""
    severity: str = "warning"
    rationale: str = ""
    example_bad: str = ""
    example_good: str = ""

    def check_project(self, index: ProjectIndex) -> Iterator[Finding]:
        raise NotImplementedError

    def finding(self, module_index: dict, site: dict, message: str
                ) -> Finding:
        """Finding anchored at an indexed site (``line``/``col`` keys)."""
        return Finding(path=module_index["path"], line=site["line"],
                       col=site.get("col", 1), check=self.id,
                       message=message, severity=self.severity)

    def __repr__(self) -> str:
        return f"<{type(self).__name__} {self.id}>"


# -- the two-phase runner ------------------------------------------------------


def lint_bundle(modules: Iterable[SourceModule],
                checkers: Iterable[Checker],
                project_checkers: Iterable[ProjectChecker] = (),
                ) -> list[Finding]:
    """Run both phases over in-memory modules (tests, the self-test)."""
    modules = list(modules)
    raw = [finding for module in modules
           for finding in analyze_module(module, checkers)]
    indexes = [build_module_index(module) for module in modules]
    project_index = ProjectIndex(indexes)
    for checker in sorted(project_checkers, key=lambda c: c.id):
        raw.extend(checker.check_project(project_index))
    return apply_suppressions(
        raw, {module.path: module.suppressions for module in modules})


def lint_tree(paths: Iterable[Path],
              checkers: Iterable[Checker],
              project_checkers: Iterable[ProjectChecker] = (),
              cache=None) -> list[Finding]:
    """Run both phases over files, via the incremental cache if given.

    The cache stores per-file phase-1 products (raw findings, module
    index, suppressions) keyed by content SHA; phase 2 always runs
    fresh from the indexes, so its cross-module view can never go
    stale. Output is byte-identical with a cold, warm, or absent cache.
    """
    cwd = Path.cwd()
    raw: list[Finding] = []
    indexes: list[dict] = []
    suppressions_by_path: dict[str, dict[int, Suppression]] = {}
    for file in iter_python_files(paths):
        try:
            display = file.resolve().relative_to(cwd).as_posix()
        except ValueError:
            display = file.as_posix()
        source_bytes = file.read_bytes()
        entry = cache.lookup(display, source_bytes) if cache else None
        if entry is None:
            module = SourceModule(display,
                                  source_bytes.decode("utf-8"))
            findings = analyze_module(module, checkers)
            index = build_module_index(module)
            suppressions = module.suppressions
            if cache is not None:
                cache.store(display, source_bytes, findings, index,
                            suppressions)
        else:
            findings, index, suppressions = entry
        raw.extend(findings)
        indexes.append(index)
        suppressions_by_path[display] = suppressions
    project_index = ProjectIndex(indexes)
    for checker in sorted(project_checkers, key=lambda c: c.id):
        raw.extend(checker.check_project(project_index))
    return apply_suppressions(raw, suppressions_by_path)
