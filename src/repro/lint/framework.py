"""Checker framework: findings, suppressions, module loading, the runner.

A :class:`Checker` inspects one :class:`SourceModule` (path + source +
parsed AST) and yields :class:`Finding` rows. The runner applies the
``# repro-lint: disable=<IDS> <reason>`` suppression comments, audits
the suppressions themselves (LNT001 missing reason, LNT002 unused), and
returns findings in a canonical order so two runs over the same tree
are byte-identical.

Whole-program (two-phase) analysis lives in :mod:`repro.lint.project`;
this module deliberately knows nothing about it beyond the split
between *producing* raw findings (:func:`analyze_module`) and
*finishing* them (:func:`apply_suppressions`), which the project runner
reuses so per-module and cross-module findings share one suppression
and ordering pipeline.
"""

from __future__ import annotations

import ast
import io
import re
import tokenize
from dataclasses import dataclass, field
from pathlib import Path
from typing import Iterable, Iterator, Optional

#: Matches one suppression comment anywhere on a physical line.
_SUPPRESSION_RE = re.compile(
    r"#\s*repro-lint:\s*disable=([A-Za-z0-9_]+(?:\s*,\s*[A-Za-z0-9_]+)*)"
    r"[ \t]*(.*)$")

#: Framework self-audit check ids (not suppressible).
LNT_MISSING_REASON = "LNT001"
LNT_UNUSED = "LNT002"

#: Finding severities, in SARIF vocabulary. ``error`` findings break
#: determinism or the architecture outright; ``warning`` findings are
#: hazards for planned work (shard-parallel domains, chaos coverage);
#: ``note`` is framework self-audit.
SEVERITIES = ("error", "warning", "note")


@dataclass(frozen=True)
class Finding:
    """One diagnostic: where, which check, and what went wrong."""

    path: str
    line: int
    col: int
    check: str
    message: str
    severity: str = "error"

    @property
    def sort_key(self) -> tuple:
        return (self.path, self.line, self.col, self.check, self.message)

    def format(self) -> str:
        return f"{self.path}:{self.line}:{self.col}: {self.check} {self.message}"

    def to_dict(self) -> dict:
        return {"path": self.path, "line": self.line, "col": self.col,
                "check": self.check, "message": self.message,
                "severity": self.severity}

    @classmethod
    def from_dict(cls, data: dict) -> "Finding":
        return cls(path=data["path"], line=data["line"], col=data["col"],
                   check=data["check"], message=data["message"],
                   severity=data.get("severity", "error"))


@dataclass
class Suppression:
    """A parsed ``# repro-lint: disable=...`` comment."""

    line: int
    checks: tuple[str, ...]
    reason: str
    used: bool = field(default=False, compare=False)

    def covers(self, check: str) -> bool:
        return check in self.checks or "all" in self.checks

    def to_dict(self) -> dict:
        """Cacheable form (the transient ``used`` flag is not stored)."""
        return {"line": self.line, "checks": list(self.checks),
                "reason": self.reason}

    @classmethod
    def from_dict(cls, data: dict) -> "Suppression":
        return cls(line=data["line"], checks=tuple(data["checks"]),
                   reason=data["reason"])


def parse_suppressions(source: str) -> dict[int, Suppression]:
    """Extract suppression comments, keyed by 1-based line number.

    The comment must sit on the same physical line as the finding it
    silences. The trailing free text is the (mandatory) reason. Only
    real ``COMMENT`` tokens count — the syntax appearing inside a
    string literal (docs, the self-test fixture) is inert.
    """
    suppressions: dict[int, Suppression] = {}
    tokens = tokenize.generate_tokens(io.StringIO(source).readline)
    for token in tokens:
        if token.type != tokenize.COMMENT:
            continue
        match = _SUPPRESSION_RE.search(token.string)
        if match is None:
            continue
        lineno = token.start[0]
        checks = tuple(part.strip() for part in match.group(1).split(",")
                       if part.strip())
        suppressions[lineno] = Suppression(
            line=lineno, checks=checks, reason=match.group(2).strip())
    return suppressions


def module_name_from_path(path: str) -> Optional[str]:
    """Dotted module name for a file path, anchored at ``repro``.

    ``src/repro/sim/kernel.py`` → ``repro.sim.kernel``;
    ``src/repro/sim/__init__.py`` → ``repro.sim``. Returns ``None``
    when the path does not contain a ``repro`` package component
    (architecture checks are skipped for such files).
    """
    parts = list(Path(path).parts)
    if parts and parts[-1].endswith(".py"):
        parts[-1] = parts[-1][:-3]
    if parts and parts[-1] == "__init__":
        parts.pop()
    if "repro" not in parts:
        return None
    return ".".join(parts[parts.index("repro"):])


class SourceModule:
    """One parsed source file handed to every checker."""

    def __init__(self, path: str, source: str,
                 module: Optional[str] = None) -> None:
        self.path = path
        self.source = source
        self.module = module if module is not None \
            else module_name_from_path(path)
        self.tree = ast.parse(source, filename=path)
        self.suppressions = parse_suppressions(source)

    @classmethod
    def from_file(cls, path: Path, display_path: Optional[str] = None
                  ) -> "SourceModule":
        return cls(display_path or path.as_posix(),
                   path.read_text(encoding="utf-8"))

    def finding(self, node: ast.AST, check: str, message: str,
                severity: str = "error") -> Finding:
        """Convenience constructor anchored at an AST node."""
        return Finding(path=self.path, line=getattr(node, "lineno", 1),
                       col=getattr(node, "col_offset", 0) + 1,
                       check=check, message=message, severity=severity)


class Checker:
    """Base class: subclasses set ``id``/``title`` and yield findings.

    ``severity`` is the default level of every finding the checker
    emits; ``rationale`` / ``example_bad`` / ``example_good`` feed
    ``repro lint --explain <ID>`` and the SARIF rule catalog.
    """

    id: str = "LNT000"
    title: str = ""
    severity: str = "error"
    rationale: str = ""
    example_bad: str = ""
    example_good: str = ""

    def check(self, module: SourceModule) -> Iterator[Finding]:
        raise NotImplementedError

    def __repr__(self) -> str:
        return f"<{type(self).__name__} {self.id}>"


def analyze_module(module: SourceModule,
                   checkers: Iterable[Checker]) -> list[Finding]:
    """Raw per-module findings, *before* suppression filtering.

    The raw list is what the incremental cache stores: suppression
    state is recomputed on every run (an edit elsewhere never changes
    it), so caching pre-suppression keeps cached and fresh runs
    byte-identical.
    """
    checkers = sorted(checkers, key=lambda c: c.id)
    return [finding for checker in checkers
            for finding in checker.check(module)]


def apply_suppressions(
        raw_findings: Iterable[Finding],
        suppressions_by_path: dict[str, dict[int, Suppression]],
) -> list[Finding]:
    """Filter raw findings through suppressions; audit; canonical sort.

    This is the single finishing pipeline for per-module *and*
    whole-program findings — a ``# repro-lint: disable=CONC001 ...``
    comment silences a cross-module finding anchored on its line
    exactly like a local one.
    """
    kept: list[Finding] = []
    for finding in sorted(raw_findings, key=lambda f: f.sort_key):
        suppression = suppressions_by_path.get(
            finding.path, {}).get(finding.line)
        if suppression is not None and suppression.covers(finding.check):
            suppression.used = True
            continue
        kept.append(finding)
    for path in sorted(suppressions_by_path):
        suppressions = suppressions_by_path[path]
        for lineno in sorted(suppressions):
            suppression = suppressions[lineno]
            if not suppression.reason:
                kept.append(Finding(
                    path=path, line=lineno, col=1,
                    check=LNT_MISSING_REASON, severity="note",
                    message="suppression comment has no reason; write "
                            "'# repro-lint: disable=<IDS> <why>'"))
            if not suppression.used:
                ids = ",".join(suppression.checks)
                kept.append(Finding(
                    path=path, line=lineno, col=1,
                    check=LNT_UNUSED, severity="note",
                    message=f"suppression 'disable={ids}' matches no "
                            f"finding on this line; remove it"))
    return sorted(kept, key=lambda f: f.sort_key)


def lint_modules(modules: Iterable[SourceModule],
                 checkers: Iterable[Checker]) -> list[Finding]:
    """Run every checker over every module; apply suppressions; sort."""
    modules = list(modules)
    raw = [finding for module in modules
           for finding in analyze_module(module, checkers)]
    return apply_suppressions(
        raw, {module.path: module.suppressions for module in modules})


def iter_python_files(paths: Iterable[Path]) -> list[Path]:
    """Expand files/directories into a sorted list of ``.py`` files."""
    files: set[Path] = set()
    for path in paths:
        if path.is_dir():
            files.update(path.rglob("*.py"))
        elif path.suffix == ".py":
            files.add(path)
    return sorted(files, key=lambda p: p.as_posix())


def lint_paths(paths: Iterable[Path],
               checkers: Iterable[Checker]) -> list[Finding]:
    """Lint every ``.py`` file under ``paths`` (deterministic order).

    Display paths are relativized to the current working directory when
    possible so findings (and baselines) are machine-independent.
    """
    cwd = Path.cwd()
    modules = []
    for file in iter_python_files(paths):
        try:
            display = file.resolve().relative_to(cwd).as_posix()
        except ValueError:
            display = file.as_posix()
        modules.append(SourceModule.from_file(file, display_path=display))
    return lint_modules(modules, checkers)
