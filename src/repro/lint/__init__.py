"""`repro.lint` — determinism & architecture static analysis.

The whole reproduction rests on one invariant: seeded, byte-identical
determinism on a virtual clock. The golden TPC-H Q6 trace, the chaos
resilience reports, and every committed benchmark artifact are pinned
on it. This package enforces the invariant *mechanically*, at lint
time, with an AST-based checker framework (stdlib ``ast``, no
dependencies beyond :func:`repro.telemetry.export.canonical_json` for
byte-stable JSON output):

* **DET001** — wall-clock reads (``time.time``, ``datetime.now``, …);
* **DET002** — unseeded global randomness (``random.*``,
  ``numpy.random`` module-level state) outside :mod:`repro.sim.rng`;
* **DET003** — iterating sets (or materializing them into sequences)
  without ``sorted(...)``;
* **DET004** — ``id()``-based keys, ordering, or tie-breaking;
* **ARCH001** — the layer DAG of :mod:`repro.lint.layer_dag` (imports
  may only point at the same or a lower layer);
* **ARCH002** — canonical-JSON discipline: ``json.dump(s)`` only
  inside :mod:`repro.telemetry.export`.

On top of the per-module pass sits a two-phase **whole-program
analysis** (:mod:`repro.lint.project`): phase 1 distills every module
into a cacheable index (symbols, imports, RNG provenance, mutation and
resource sites, call edges); phase 2 runs :class:`ProjectChecker`\\ s
over the stitched index:

* **DET005** — RNG seed provenance: generators drawn from outside the
  layer that constructed them; seeds derived from ``hash()``/``id()``
  or wall clocks;
* **CONC001** — module globals mutated from code reachable by
  shard/sim event handlers (the shard-parallel race hazard);
* **CONC002** — objects registered per-shard that also escape into
  module-global registries (cross-domain aliasing);
* **RES001** — spans/handles opened without a reaching settle call,
  with the obligation following returned resources into callers;
* **EXC001** — broad exception handlers that would silently mask
  injected chaos faults.

Findings carry ``path:line:col``, a check id, a severity, and a
message; a line comment ``# repro-lint: disable=DET001 <reason>``
suppresses them (the reason is mandatory — LNT001 flags bare
suppressions, LNT002 flags suppressions that no longer match
anything). ``repro lint`` is the CLI; ``repro lint --strict`` is the
CI gate; ``repro lint --self-test`` replays a bundled fixture bundle
of known violations so a checker can never silently go dead; ``repro
lint --sarif`` emits SARIF 2.1.0 for CI diff annotations; ``repro
lint --explain <ID>`` prints a checker's rationale with a bad/good
example. Phase 1 results are cached per file SHA
(:mod:`repro.lint.cache`), and output stays byte-identical across
runs, discovery orders, and cache states. See
``docs/static_analysis.md``.
"""

from repro.lint.arch import CanonicalJsonChecker, LayerChecker
from repro.lint.baseline import Baseline, diff_against_baseline
from repro.lint.concurrency import (
    CrossDomainAliasChecker,
    SharedStateChecker,
)
from repro.lint.determinism import (
    IdentityOrderChecker,
    OrderingChecker,
    UnseededRandomChecker,
    WallClockChecker,
)
from repro.lint.framework import (
    Checker,
    Finding,
    SourceModule,
    analyze_module,
    apply_suppressions,
    lint_modules,
    lint_paths,
    parse_suppressions,
)
from repro.lint.lifecycle import (
    ResourceLifecycleChecker,
    SwallowedExceptionChecker,
)
from repro.lint.project import (
    ModuleIndexer,
    ProjectChecker,
    ProjectIndex,
    build_module_index,
    lint_bundle,
    lint_tree,
)
from repro.lint.provenance import SeedProvenanceChecker


def all_checkers() -> list[Checker]:
    """Every shipped per-module checker, in check-id order."""
    return sorted([
        WallClockChecker(),
        UnseededRandomChecker(),
        OrderingChecker(),
        IdentityOrderChecker(),
        LayerChecker(),
        CanonicalJsonChecker(),
        SwallowedExceptionChecker(),
    ], key=lambda checker: checker.id)


def all_project_checkers() -> list[ProjectChecker]:
    """Every shipped whole-program checker, in check-id order."""
    return sorted([
        SeedProvenanceChecker(),
        SharedStateChecker(),
        CrossDomainAliasChecker(),
        ResourceLifecycleChecker(),
    ], key=lambda checker: checker.id)


__all__ = [
    "Baseline",
    "CanonicalJsonChecker",
    "Checker",
    "CrossDomainAliasChecker",
    "Finding",
    "IdentityOrderChecker",
    "LayerChecker",
    "ModuleIndexer",
    "OrderingChecker",
    "ProjectChecker",
    "ProjectIndex",
    "ResourceLifecycleChecker",
    "SeedProvenanceChecker",
    "SharedStateChecker",
    "SourceModule",
    "SwallowedExceptionChecker",
    "UnseededRandomChecker",
    "WallClockChecker",
    "all_checkers",
    "all_project_checkers",
    "analyze_module",
    "apply_suppressions",
    "build_module_index",
    "diff_against_baseline",
    "lint_bundle",
    "lint_modules",
    "lint_paths",
    "lint_tree",
    "parse_suppressions",
]
