"""`repro.lint` — determinism & architecture static analysis.

The whole reproduction rests on one invariant: seeded, byte-identical
determinism on a virtual clock. The golden TPC-H Q6 trace, the chaos
resilience reports, and every committed benchmark artifact are pinned
on it. This package enforces the invariant *mechanically*, at lint
time, with an AST-based checker framework (stdlib ``ast``, no
dependencies beyond :func:`repro.telemetry.export.canonical_json` for
byte-stable JSON output):

* **DET001** — wall-clock reads (``time.time``, ``datetime.now``, …);
* **DET002** — unseeded global randomness (``random.*``,
  ``numpy.random`` module-level state) outside :mod:`repro.sim.rng`;
* **DET003** — iterating sets (or materializing them into sequences)
  without ``sorted(...)``;
* **DET004** — ``id()``-based keys, ordering, or tie-breaking;
* **ARCH001** — the layer DAG of :mod:`repro.lint.layer_dag` (imports
  may only point at the same or a lower layer);
* **ARCH002** — canonical-JSON discipline: ``json.dump(s)`` only
  inside :mod:`repro.telemetry.export`.

Findings carry ``path:line:col``, a check id, and a message; a line
comment ``# repro-lint: disable=DET001 <reason>`` suppresses them (the
reason is mandatory — LNT001 flags bare suppressions, LNT002 flags
suppressions that no longer match anything). ``repro lint`` is the CLI;
``repro lint --strict`` is the CI gate; ``repro lint --self-test``
replays a bundled fixture of known violations so a checker can never
silently go dead. See ``docs/static_analysis.md``.
"""

from repro.lint.arch import CanonicalJsonChecker, LayerChecker
from repro.lint.baseline import Baseline, diff_against_baseline
from repro.lint.determinism import (
    IdentityOrderChecker,
    OrderingChecker,
    UnseededRandomChecker,
    WallClockChecker,
)
from repro.lint.framework import (
    Checker,
    Finding,
    SourceModule,
    lint_modules,
    lint_paths,
    parse_suppressions,
)


def all_checkers() -> list[Checker]:
    """Every shipped checker, in check-id order."""
    return sorted([
        WallClockChecker(),
        UnseededRandomChecker(),
        OrderingChecker(),
        IdentityOrderChecker(),
        LayerChecker(),
        CanonicalJsonChecker(),
    ], key=lambda checker: checker.id)


__all__ = [
    "Baseline",
    "CanonicalJsonChecker",
    "Checker",
    "Finding",
    "IdentityOrderChecker",
    "LayerChecker",
    "OrderingChecker",
    "SourceModule",
    "UnseededRandomChecker",
    "WallClockChecker",
    "all_checkers",
    "diff_against_baseline",
    "lint_modules",
    "lint_paths",
    "parse_suppressions",
]
