"""Baseline files: accepted pre-existing findings that don't fail CI.

A baseline entry matches on ``(path, check, message)`` — line numbers
drift with every edit, so they are recorded for humans but ignored when
matching. Matching is multiset-aware: two identical findings in one
file need two baseline entries.

The intended steady state is an *empty* baseline (fix or suppress
everything); the machinery exists so a future PR can land a checker
tightening without first fixing the whole tree.
"""

from __future__ import annotations

import json
from collections import Counter
from pathlib import Path
from typing import Iterable, Optional

from repro.lint.framework import Finding
from repro.telemetry.export import canonical_json

BASELINE_VERSION = 1


class Baseline:
    """A committed set of accepted findings."""

    def __init__(self, entries: Optional[list[dict]] = None) -> None:
        self.entries = list(entries or [])

    @staticmethod
    def _key(entry: dict) -> tuple[str, str, str]:
        return (entry["path"], entry["check"], entry["message"])

    @classmethod
    def load(cls, path: Path) -> "Baseline":
        """Read a baseline file; a missing file is an empty baseline."""
        if not path.exists():
            return cls()
        data = json.loads(path.read_text(encoding="utf-8"))
        if data.get("version") != BASELINE_VERSION:
            raise ValueError(
                f"unsupported baseline version {data.get('version')!r} "
                f"in {path} (expected {BASELINE_VERSION})")
        return cls(data.get("findings", []))

    @classmethod
    def from_findings(cls, findings: Iterable[Finding]) -> "Baseline":
        return cls([f.to_dict() for f in
                    sorted(findings, key=lambda f: f.sort_key)])

    def to_json(self) -> str:
        """Byte-stable serialization (the file is committed to git)."""
        return canonical_json({
            "version": BASELINE_VERSION,
            "findings": sorted(self.entries, key=self._key),
        }) + "\n"

    def save(self, path: Path) -> None:
        path.write_text(self.to_json(), encoding="utf-8")


def diff_against_baseline(findings: Iterable[Finding], baseline: Baseline
                          ) -> tuple[list[Finding], list[Finding], list[dict]]:
    """Split findings into (new, accepted) and report stale entries.

    ``new`` are findings with no remaining baseline allowance — the CI
    gate fails on them. ``accepted`` matched a baseline entry. ``stale``
    are baseline entries that matched nothing (the code got fixed but
    the baseline wasn't regenerated) — ``--strict`` fails on them too,
    so the baseline can only shrink over time.
    """
    allowance = Counter(Baseline._key(e) for e in baseline.entries)
    new: list[Finding] = []
    accepted: list[Finding] = []
    for finding in sorted(findings, key=lambda f: f.sort_key):
        key = (finding.path, finding.check, finding.message)
        if allowance.get(key, 0) > 0:
            allowance[key] -= 1
            accepted.append(finding)
        else:
            new.append(finding)
    stale = sorted(
        ({"path": path, "check": check, "message": message}
         for (path, check, message), count in allowance.items()
         for _ in range(count)),
        key=lambda e: Baseline._key(e))
    return new, accepted, stale
