"""SARIF 2.1.0 export: lint findings as CI diff annotations.

GitHub (and every other SARIF consumer) renders a SARIF run as inline
annotations on the PR diff, so a DET005 cross-layer draw shows up on
the offending line of the review instead of in a job log. One run, one
tool (``repro-lint``), one result per finding; rule metadata is built
from the checker catalog so ``--explain`` text and hover-help stay a
single source of truth.

The report is serialized through
:func:`repro.telemetry.export.canonical_json` and the results arrive
pre-sorted in the findings' canonical order, so two runs over the same
tree emit byte-identical SARIF — the same determinism contract as the
text and ``--json`` outputs, property-tested alongside them.
"""

from __future__ import annotations

from typing import Iterable

from repro.lint.framework import Finding

SARIF_VERSION = "2.1.0"
SARIF_SCHEMA = ("https://raw.githubusercontent.com/oasis-tcs/"
                "sarif-spec/master/Schemata/sarif-schema-2.1.0.json")

#: Finding severity -> SARIF result level.
LEVELS = {"error": "error", "warning": "warning", "note": "note"}


def _rule(checker) -> dict:
    """SARIF reportingDescriptor for one checker."""
    text = (checker.__doc__ or checker.title or checker.id).strip()
    short = text.splitlines()[0]
    rule = {
        "id": checker.id,
        "name": type(checker).__name__,
        "shortDescription": {"text": short},
        "defaultConfiguration": {
            "level": LEVELS.get(checker.severity, "warning")},
    }
    if checker.rationale:
        rule["fullDescription"] = {"text": checker.rationale}
    help_parts = []
    if checker.example_bad:
        help_parts.append("Bad:\n" + checker.example_bad)
    if checker.example_good:
        help_parts.append("Good:\n" + checker.example_good)
    if help_parts:
        rule["help"] = {"text": "\n".join(help_parts)}
    return rule


def _result(finding: Finding, rule_index: dict[str, int],
            baselined: bool) -> dict:
    result = {
        "ruleId": finding.check,
        "level": LEVELS.get(finding.severity, "warning"),
        "message": {"text": finding.message},
        "locations": [{
            "physicalLocation": {
                "artifactLocation": {"uri": finding.path,
                                     "uriBaseId": "SRCROOT"},
                "region": {"startLine": finding.line,
                           "startColumn": finding.col},
            },
        }],
    }
    if finding.check in rule_index:
        result["ruleIndex"] = rule_index[finding.check]
    if baselined:
        # Accepted debt: present in the report, suppressed in review.
        result["suppressions"] = [{"kind": "external",
                                   "justification": "lint-baseline.json"}]
    return result


def sarif_report(findings: Iterable[Finding], checkers: Iterable,
                 baselined: Iterable[Finding] = ()) -> dict:
    """The complete SARIF 2.1.0 log for one lint run.

    ``checkers`` supplies the rule catalog (module and project checkers
    alike — both expose ``id``/``severity``/``rationale``); findings
    already carry the canonical order from the runner.
    """
    rules = sorted((_rule(checker) for checker in checkers),
                   key=lambda rule: rule["id"])
    rule_index = {rule["id"]: i for i, rule in enumerate(rules)}
    baselined = set(baselined)
    return {
        "$schema": SARIF_SCHEMA,
        "version": SARIF_VERSION,
        "runs": [{
            "tool": {
                "driver": {
                    "name": "repro-lint",
                    "rules": rules,
                },
            },
            "columnKind": "unicodeCodePoints",
            "originalUriBaseIds": {"SRCROOT": {"uri": "file:///./"}},
            "results": [_result(finding, rule_index,
                                finding in baselined)
                        for finding in findings],
        }],
    }
