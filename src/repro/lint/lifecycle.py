"""RES001/EXC001 — resource lifecycle and swallowed-fault checkers.

RES001 tracks open/settle obligations for the protocols in
:data:`repro.lint.project.RESOURCE_PROTOCOLS` (spans must be
``finish()``-ed, acquisitions released, handles closed/drained). The
analysis is whole-program where it matters: a function that *returns*
a still-open resource hands the obligation to its caller, propagated
to a fixpoint over the bound-call graph, so a span opened in a helper
and leaked three callers up is still one file:line finding.

The path model is deliberately an approximation (this is a linter, not
a verifier): an obligation is satisfied by any settle call on the
bound name, *unless* every settle site sits inside an ``except``
handler — settled-only-on-the-error-path is the leak pattern that
produced unfinished spans in real traces. Escapes discharge the local
obligation: a resource returned, yielded, stored into a structure, or
passed to another call has a new owner.

EXC001 flags broad exception handlers (bare ``except`` / ``Exception``
/ ``BaseException``) whose body neither re-raises nor does any work.
Chaos plans (:mod:`repro.chaos`) prove recovery by *injecting* faults;
a handler that silently swallows everything also swallows the
injection, and the resilience report claims a recovery that never ran.
"""

from __future__ import annotations

import ast
from typing import Iterator

from repro.lint.framework import Checker, Finding, SourceModule
from repro.lint.project import (
    RESOURCE_PROTOCOLS,
    ProjectChecker,
    ProjectIndex,
)


class ResourceLifecycleChecker(ProjectChecker):
    """RES001 — opened spans/handles with no reaching settle call."""

    id = "RES001"
    title = "resource lifecycle"
    severity = "warning"
    rationale = (
        "A span opened and never finished stays open forever: trace "
        "exports show zero-duration spans, SLO attribution loses the "
        "tail it most needs, and the flight recorder retains garbage. "
        "The same goes for unreleased acquisitions and undrained "
        "handles. The obligation follows the object: a function that "
        "returns an open resource passes the duty to close it to its "
        "caller.")
    example_bad = (
        "def handle(recorder, env):\n"
        "    span = recorder.start_span('work', env.now)\n"
        "    do_work()\n"
        "    # span never finished — leaks into every trace export\n")
    example_good = (
        "def handle(recorder, env):\n"
        "    span = recorder.start_span('work', env.now)\n"
        "    try:\n"
        "        do_work()\n"
        "    finally:\n"
        "        span.finish(env.now)\n")

    def check_project(self, index: ProjectIndex) -> Iterator[Finding]:
        for name in sorted(index.modules):
            if ProjectIndex._is_resource_home(name):
                continue
            module_index = index.modules[name]
            functions = module_index["functions"]
            for qualname in sorted(functions):
                yield from self._check_function(
                    index, module_index, name, qualname,
                    functions[qualname])

    def _check_function(self, index: ProjectIndex, module_index: dict,
                        module: str, qualname: str, fn: dict
                        ) -> Iterator[Finding]:
        obligations = [(site, f"{site['method']}() resource")
                       for site in fn["opens"]]
        for call in fn["bound_calls"]:
            if call["target"] in index.returns_open:
                obligations.append(
                    (call, f"open resource returned by "
                           f"{call['target'].rsplit('.', 1)[-1]}()"))
        for site, what in obligations:
            name = site["name"]
            if name in fn["with_names"]:
                continue  # context manager settles it
            if name in fn["returned"]:
                continue  # obligation moves to the caller (fixpoint)
            if name in fn["stored"]:
                continue  # escaped: stored or passed on — new owner
            closes = fn["closes"].get(name)
            if not closes:
                method = site.get("method")
                closers = " / ".join(RESOURCE_PROTOCOLS.get(
                    method, ("finish", "close", "release")))
                yield self.finding(
                    module_index, site,
                    f"'{name}' holds a {what} in '{qualname}' but no "
                    f"path settles it ({closers}); close it in a "
                    f"finally block or hand it off explicitly")
            elif closes == ["except"]:
                yield self.finding(
                    module_index, site,
                    f"'{name}' ({what} in '{qualname}') is settled "
                    f"only inside an except handler — the success "
                    f"path leaks it; settle in a finally block "
                    f"instead")


#: Exception names too broad to swallow silently.
BROAD_EXCEPTIONS = frozenset({"Exception", "BaseException"})


def _is_broad(handler: ast.ExceptHandler,
              aliases: dict[str, str]) -> bool:
    """Whether the handler catches (at least) every ordinary exception."""
    if handler.type is None:
        return True  # bare except
    types = (handler.type.elts if isinstance(handler.type, ast.Tuple)
             else [handler.type])
    for node in types:
        if isinstance(node, ast.Name) and node.id in BROAD_EXCEPTIONS:
            return True
        if isinstance(node, ast.Attribute) \
                and node.attr in BROAD_EXCEPTIONS:
            return True
    return False


def _swallows(handler: ast.ExceptHandler) -> bool:
    """Whether the handler body does nothing with the exception.

    Any raise, call, assignment, return-of-a-value, or control flow
    that *uses* the exception counts as handling; ``pass``,
    ``continue``, ``...``, and bare ``return`` do not.
    """
    for statement in handler.body:
        if isinstance(statement, ast.Pass):
            continue
        if isinstance(statement, ast.Continue):
            continue
        if isinstance(statement, ast.Return) and statement.value is None:
            continue
        if isinstance(statement, ast.Expr) \
                and isinstance(statement.value, ast.Constant):
            continue  # docstring / `...`
        return False
    return True


class SwallowedExceptionChecker(Checker):
    """EXC001 — broad handlers that silently discard the exception."""

    id = "EXC001"
    title = "swallowed exceptions"
    severity = "warning"
    rationale = (
        "Chaos engineering proves fault tolerance by injecting faults "
        "and asserting recovery. `except Exception: pass` masks the "
        "injected fault along with the real ones: the run looks green, "
        "the resilience report credits a recovery that never executed, "
        "and the paper-facing claim is wrong. Catch the specific "
        "exception the code can actually handle, or at minimum record "
        "the fault before suppressing it.")
    example_bad = (
        "try:\n"
        "    yield from storage.get(key)\n"
        "except Exception:\n"
        "    pass   # chaos S3 storm vanishes here\n")
    example_good = (
        "try:\n"
        "    yield from storage.get(key)\n"
        "except ThrottleError:       # the one fault we re-queue\n"
        "    self.requeue(key)\n")

    def check(self, module: SourceModule) -> Iterator[Finding]:
        from repro.lint.determinism import import_aliases
        aliases = import_aliases(module.tree)
        for node in ast.walk(module.tree):
            if not isinstance(node, ast.ExceptHandler):
                continue
            if _is_broad(node, aliases) and _swallows(node):
                caught = ("bare except" if node.type is None
                          else ast.unparse(node.type))
                yield module.finding(
                    node, self.id,
                    f"broad handler ({caught}) silently swallows the "
                    f"exception — injected chaos faults would be "
                    f"masked; catch the specific exception or record "
                    f"it before suppressing", severity=self.severity)
