"""The ``repro lint`` subcommand.

Modes:

* default — lint the tree, print findings (baseline-accepted ones are
  tagged), always exit 0 (informational);
* ``--strict`` — the CI gate: exit 1 on any finding not covered by the
  baseline, on any stale baseline entry, and on framework findings
  (LNT001/LNT002), so the accepted-debt set can only shrink;
* ``--self-test`` — run every checker against the bundled
  known-violations fixture and fail on any drift;
* ``--update-baseline`` — accept the current findings as debt;
* ``--list-checks`` — print the checker catalog.

Output is human text or (``--json``) canonical JSON — two runs over
the same tree are byte-identical.
"""

from __future__ import annotations

import sys
from pathlib import Path

from repro.lint import all_checkers, diff_against_baseline, lint_paths
from repro.lint.baseline import Baseline
from repro.telemetry.export import canonical_json

#: Default lint roots (relative to the repo root, where CI runs).
DEFAULT_PATHS = ("src/repro",)

#: Default committed baseline location.
DEFAULT_BASELINE = "lint-baseline.json"


def add_lint_arguments(parser) -> None:
    """Attach the ``repro lint`` flags to an argparse subparser."""
    parser.add_argument("paths", nargs="*", default=list(DEFAULT_PATHS),
                        help="files or directories to lint "
                             "(default: src/repro)")
    parser.add_argument("--strict", action="store_true",
                        help="CI gate: fail on new findings, stale "
                             "baseline entries, or suppression misuse")
    parser.add_argument("--json", action="store_true",
                        help="emit the canonical JSON report")
    parser.add_argument("--baseline", default=DEFAULT_BASELINE,
                        help="baseline file of accepted findings "
                             f"(default: {DEFAULT_BASELINE})")
    parser.add_argument("--update-baseline", action="store_true",
                        help="rewrite the baseline to accept every "
                             "current finding")
    parser.add_argument("--self-test", action="store_true",
                        help="run all checkers against the bundled "
                             "fixture of known violations")
    parser.add_argument("--list-checks", action="store_true",
                        help="list the available checks and exit")


def run_lint(args) -> int:
    """Execute ``repro lint``; returns the process exit code."""
    if args.self_test:
        from repro.lint.selftest import run_self_test
        ok, lines = run_self_test()
        print("\n".join(lines), file=sys.stdout if ok else sys.stderr)
        return 0 if ok else 1

    checkers = all_checkers()
    if args.list_checks:
        for checker in checkers:
            print(f"{checker.id}  {checker.title}")
        print("LNT001  suppression missing a reason")
        print("LNT002  suppression matching no finding")
        return 0

    paths = [Path(p) for p in args.paths]
    missing = [p for p in paths if not p.exists()]
    if missing:
        print(f"repro lint: error: no such path: "
              f"{', '.join(str(p) for p in missing)}", file=sys.stderr)
        return 2
    findings = lint_paths(paths, checkers)

    baseline_path = Path(args.baseline)
    if args.update_baseline:
        Baseline.from_findings(findings).save(baseline_path)
        print(f"baseline: wrote {len(findings)} finding(s) to "
              f"{baseline_path}")
        return 0

    baseline = Baseline.load(baseline_path)
    new, accepted, stale = diff_against_baseline(findings, baseline)
    lnt = [f for f in new if f.check.startswith("LNT")]

    if args.json:
        print(canonical_json({
            "findings": [dict(f.to_dict(), baselined=f in accepted)
                         for f in sorted(findings,
                                         key=lambda f: f.sort_key)],
            "stale_baseline": stale,
            "summary": {"new": len(new), "baselined": len(accepted),
                        "stale_baseline": len(stale), "strict": args.strict},
        }))
    else:
        for finding in new:
            print(finding.format())
        for finding in accepted:
            print(f"{finding.format()} [baselined]")
        for entry in stale:
            print(f"{entry['path']}: stale baseline entry "
                  f"{entry['check']} ({entry['message']}); regenerate "
                  f"with --update-baseline")
        print(f"repro lint: {len(new)} new, {len(accepted)} baselined, "
              f"{len(stale)} stale baseline entr"
              f"{'y' if len(stale) == 1 else 'ies'}")

    if args.strict and (new or stale or lnt):
        return 1
    return 0
