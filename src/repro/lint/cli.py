"""The ``repro lint`` subcommand.

Modes:

* default — lint the tree (both phases, through the incremental
  cache), print findings (baseline-accepted ones are tagged), always
  exit 0 (informational);
* ``--strict`` — the CI gate: exit 1 on any finding not covered by the
  baseline, on any stale baseline entry, and on framework findings
  (LNT001/LNT002), so the accepted-debt set can only shrink;
* ``--sarif`` — emit the SARIF 2.1.0 log (CI uploads it so findings
  annotate the PR diff);
* ``--self-test`` — run every checker against the bundled fixture
  bundle and fail on any drift;
* ``--explain CHECK_ID`` — a checker's rationale and a bad/good pair,
  for review discussions and suppression reasons;
* ``--update-baseline`` — accept the current findings as debt;
* ``--list-checks`` — print the checker catalog.

``--no-cache`` forces a cold run (CI uses it so the recorded time
budget measures the analysis, not the cache); ``--max-seconds`` turns
the run's wall time into a gate so the incremental cache's value is
itself regression-tested.

Output is human text or (``--json`` / ``--sarif``) canonical JSON —
two runs over the same tree are byte-identical, whatever the cache
state.
"""

from __future__ import annotations

import sys
import time
from pathlib import Path

from repro.lint import (
    all_checkers,
    all_project_checkers,
    diff_against_baseline,
    lint_tree,
)
from repro.lint.baseline import Baseline
from repro.lint.cache import LintCache
from repro.lint.framework import Checker
from repro.lint.sarif import sarif_report
from repro.telemetry.export import canonical_json

#: Default lint roots (relative to the repo root, where CI runs).
DEFAULT_PATHS = ("src/repro",)

#: Default committed baseline location.
DEFAULT_BASELINE = "lint-baseline.json"

#: Default incremental-cache location (gitignored scratch).
DEFAULT_CACHE = ".repro-lint-cache.json"

#: LNT001/LNT002 pseudo-checkers for --list-checks / --explain / SARIF.
_LNT_DOCS = {
    "LNT001": ("suppression missing a reason",
               "Suppressions are reviewed debt; the reason is the "
               "review. A bare disable comment hides a finding with "
               "no trace of why that was acceptable.",
               "x = time.time()  # repro-lint: disable=DET001",
               "x = time.time()  # repro-lint: disable=DET001 host "
               "profiling only, not simulated time"),
    "LNT002": ("suppression matching no finding",
               "A suppression that outlives the finding it silenced "
               "will silently swallow the next, unrelated finding on "
               "that line.",
               "return 0  # repro-lint: disable=DET001 removed call",
               "return 0"),
}


def _lnt_checkers() -> list[Checker]:
    checkers = []
    for check_id, (title, rationale, bad, good) in sorted(
            _LNT_DOCS.items()):
        checker = Checker()
        checker.id = check_id
        checker.title = title
        checker.severity = "note"
        checker.rationale = rationale
        checker.example_bad = bad
        checker.example_good = good
        checkers.append(checker)
    return checkers


def add_lint_arguments(parser) -> None:
    """Attach the ``repro lint`` flags to an argparse subparser."""
    parser.add_argument("paths", nargs="*", default=list(DEFAULT_PATHS),
                        help="files or directories to lint "
                             "(default: src/repro)")
    parser.add_argument("--strict", action="store_true",
                        help="CI gate: fail on new findings, stale "
                             "baseline entries, or suppression misuse")
    parser.add_argument("--json", action="store_true",
                        help="emit the canonical JSON report")
    parser.add_argument("--sarif", action="store_true",
                        help="emit the SARIF 2.1.0 log (for CI diff "
                             "annotations)")
    parser.add_argument("--baseline", default=DEFAULT_BASELINE,
                        help="baseline file of accepted findings "
                             f"(default: {DEFAULT_BASELINE})")
    parser.add_argument("--update-baseline", action="store_true",
                        help="rewrite the baseline to accept every "
                             "current finding")
    parser.add_argument("--self-test", action="store_true",
                        help="run all checkers against the bundled "
                             "fixtures of known violations")
    parser.add_argument("--list-checks", action="store_true",
                        help="list the available checks and exit")
    parser.add_argument("--explain", metavar="CHECK_ID",
                        help="print one checker's rationale and a "
                             "bad/good example, then exit")
    parser.add_argument("--cache", default=DEFAULT_CACHE,
                        help="incremental cache file keyed by file SHA "
                             f"(default: {DEFAULT_CACHE})")
    parser.add_argument("--no-cache", action="store_true",
                        help="ignore and do not write the incremental "
                             "cache (cold run)")
    parser.add_argument("--max-seconds", type=float, default=None,
                        help="fail if the lint run's wall time exceeds "
                             "this budget (guards analysis cost)")


def _explain(check_id: str) -> int:
    catalog = {checker.id: checker
               for checker in (all_checkers() + all_project_checkers()
                               + _lnt_checkers())}
    checker = catalog.get(check_id)
    if checker is None:
        print(f"repro lint: error: unknown check '{check_id}'; see "
              f"--list-checks", file=sys.stderr)
        return 2
    doc = (type(checker).__doc__ or "").strip() \
        if type(checker) is not Checker else ""
    lines = [f"{checker.id} — {checker.title} [{checker.severity}]"]
    if doc:
        lines += ["", doc]
    if checker.rationale:
        lines += ["", "Why:", f"  {checker.rationale}"]
    if checker.example_bad:
        lines += ["", "Bad:"] + [f"  {line}" for line
                                 in checker.example_bad.splitlines()]
    if checker.example_good:
        lines += ["", "Good:"] + [f"  {line}" for line
                                  in checker.example_good.splitlines()]
    lines += ["", f"Suppress with: # repro-lint: disable={checker.id} "
                  f"<reason> (the reason is mandatory)"]
    print("\n".join(lines))
    return 0


def run_lint(args) -> int:
    """Execute ``repro lint``; returns the process exit code."""
    started = time.perf_counter()  # repro-lint: disable=DET001 gates the linter's own wall time, never simulated time
    if args.self_test:
        from repro.lint.selftest import run_self_test
        ok, lines = run_self_test()
        print("\n".join(lines), file=sys.stdout if ok else sys.stderr)
        return 0 if ok else 1
    if args.explain:
        return _explain(args.explain)

    checkers = all_checkers()
    project_checkers = all_project_checkers()
    if args.list_checks:
        for checker in sorted(checkers + project_checkers,
                              key=lambda c: c.id):
            kind = "project" if checker in project_checkers else "module"
            print(f"{checker.id}  {checker.title} "
                  f"[{checker.severity}, {kind}]")
        for check_id, (title, _, _, _) in sorted(_LNT_DOCS.items()):
            print(f"{check_id}  {title} [note, framework]")
        return 0

    paths = [Path(p) for p in args.paths]
    missing = [p for p in paths if not p.exists()]
    if missing:
        print(f"repro lint: error: no such path: "
              f"{', '.join(str(p) for p in missing)}", file=sys.stderr)
        return 2
    cache = None if args.no_cache else LintCache(Path(args.cache))
    findings = lint_tree(paths, checkers, project_checkers, cache=cache)
    if cache is not None:
        cache.save()

    baseline_path = Path(args.baseline)
    if args.update_baseline:
        Baseline.from_findings(findings).save(baseline_path)
        print(f"baseline: wrote {len(findings)} finding(s) to "
              f"{baseline_path}")
        return 0

    baseline = Baseline.load(baseline_path)
    new, accepted, stale = diff_against_baseline(findings, baseline)
    lnt = [f for f in new if f.check.startswith("LNT")]

    if args.sarif:
        print(canonical_json(sarif_report(
            sorted(findings, key=lambda f: f.sort_key),
            checkers + project_checkers + _lnt_checkers(),
            baselined=accepted)))
    elif args.json:
        print(canonical_json({
            "findings": [dict(f.to_dict(), baselined=f in accepted)
                         for f in sorted(findings,
                                         key=lambda f: f.sort_key)],
            "stale_baseline": stale,
            "summary": {"new": len(new), "baselined": len(accepted),
                        "stale_baseline": len(stale), "strict": args.strict},
        }))
    else:
        for finding in new:
            print(finding.format())
        for finding in accepted:
            print(f"{finding.format()} [baselined]")
        for entry in stale:
            print(f"{entry['path']}: stale baseline entry "
                  f"{entry['check']} ({entry['message']}); regenerate "
                  f"with --update-baseline")
        print(f"repro lint: {len(new)} new, {len(accepted)} baselined, "
              f"{len(stale)} stale baseline entr"
              f"{'y' if len(stale) == 1 else 'ies'}")

    if args.max_seconds is not None:
        elapsed = time.perf_counter() - started  # repro-lint: disable=DET001 gates the linter's own wall time, never simulated time
        if elapsed > args.max_seconds:
            print(f"repro lint: time budget exceeded: {elapsed:.2f}s > "
                  f"{args.max_seconds:.2f}s (is the incremental cache "
                  f"or the analysis regressing?)", file=sys.stderr)
            return 1

    if args.strict and (new or stale or lnt):
        return 1
    return 0
