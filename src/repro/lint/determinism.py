"""DET001–DET004: the determinism checkers.

Everything in the simulation must be a pure function of the seed and
the configuration. These checkers ban the four ways real-world entropy
leaks in: wall clocks, unseeded global RNGs, set iteration order, and
memory-address identity.
"""

from __future__ import annotations

import ast
from typing import Iterator, Optional

from repro.lint.framework import Checker, Finding, SourceModule

# -- dotted-name resolution ---------------------------------------------------


def import_aliases(tree: ast.AST) -> dict[str, str]:
    """Map names bound by imports to the dotted origin they denote.

    ``import numpy as np`` → ``{"np": "numpy"}``;
    ``from datetime import datetime`` → ``{"datetime": "datetime.datetime"}``.
    Only import-bound names are mapped, so attribute chains rooted at
    local variables never resolve (and never false-positive).
    """
    aliases: dict[str, str] = {}
    for node in ast.walk(tree):
        if isinstance(node, ast.Import):
            for alias in node.names:
                if alias.asname:
                    aliases[alias.asname] = alias.name
                else:
                    root = alias.name.split(".")[0]
                    aliases[root] = root
        elif isinstance(node, ast.ImportFrom) and node.level == 0 \
                and node.module:
            for alias in node.names:
                if alias.name == "*":
                    continue
                aliases[alias.asname or alias.name] = \
                    f"{node.module}.{alias.name}"
    return aliases


def resolve_dotted(node: ast.expr, aliases: dict[str, str]) -> Optional[str]:
    """Resolve ``np.random.rand`` → ``numpy.random.rand`` (or ``None``)."""
    parts: list[str] = []
    while isinstance(node, ast.Attribute):
        parts.append(node.attr)
        node = node.value
    if not isinstance(node, ast.Name) or node.id not in aliases:
        return None
    parts.append(aliases[node.id])
    return ".".join(reversed(parts))


# -- DET001: wall clocks ------------------------------------------------------

#: Real-time sources; the simulation's only clock is ``Environment.now``.
WALL_CLOCK_CALLS = frozenset({
    "time.time", "time.time_ns", "time.monotonic", "time.monotonic_ns",
    "time.perf_counter", "time.perf_counter_ns", "time.process_time",
    "time.process_time_ns", "time.sleep",
    "datetime.datetime.now", "datetime.datetime.today",
    "datetime.datetime.utcnow", "datetime.date.today",
})


class WallClockChecker(Checker):
    """DET001 — wall-clock and OS-timer calls."""

    id = "DET001"
    title = "wall-clock ban"
    rationale = (
        "The simulation runs on a virtual clock; a host wall-clock "
        "read smuggles real time into results, so two runs of the "
        "'same' experiment diverge and the golden traces stop "
        "replaying.")
    example_bad = "started = time.time()"
    example_good = "started = env.now"

    def check(self, module: SourceModule) -> Iterator[Finding]:
        aliases = import_aliases(module.tree)
        for node in ast.walk(module.tree):
            if not isinstance(node, ast.Call):
                continue
            dotted = resolve_dotted(node.func, aliases)
            if dotted in WALL_CLOCK_CALLS:
                yield module.finding(
                    node, self.id,
                    f"wall-clock call '{dotted}()' breaks virtual-clock "
                    f"determinism; use Environment.now / env.timeout()")


# -- DET002: unseeded randomness ----------------------------------------------

#: The one module allowed to own RNG state (it derives named seeded
#: streams for everyone else).
RNG_HOME = "repro.sim.rng"

#: ``numpy.random`` members that construct *seeded, local* generators
#: rather than touching the module-global state.
NUMPY_RANDOM_SAFE = frozenset({
    "default_rng", "Generator", "SeedSequence", "BitGenerator",
    "PCG64", "PCG64DXSM", "Philox", "SFC64", "MT19937",
})


class UnseededRandomChecker(Checker):
    """DET002 — module-global ``random`` / ``numpy.random`` state."""

    id = "DET002"
    title = "unseeded randomness"
    rationale = (
        "Module-level RNG state (random.*, np.random.*) is process "
        "global and unseeded: results change run to run and any "
        "import-order change perturbs every downstream draw. All "
        "randomness flows from seeded, named streams.")
    example_bad = "jitter = random.random()"
    example_good = "jitter = sim.rng.stream('faas.cold_start').random()"

    def check(self, module: SourceModule) -> Iterator[Finding]:
        if module.module == RNG_HOME:
            return
        aliases = import_aliases(module.tree)
        for node in ast.walk(module.tree):
            if not isinstance(node, ast.Call):
                continue
            dotted = resolve_dotted(node.func, aliases)
            if dotted is None:
                continue
            parts = dotted.split(".")
            if parts[0] == "random" and len(parts) > 1 \
                    and parts[1] != "Random":
                yield module.finding(
                    node, self.id,
                    f"'{dotted}()' uses the process-global (or OS-entropy) "
                    f"RNG; draw from a named sim.rng stream instead")
            elif parts[:2] == ["numpy", "random"] and len(parts) > 2 \
                    and parts[2] not in NUMPY_RANDOM_SAFE:
                yield module.finding(
                    node, self.id,
                    f"'{dotted}()' touches numpy's global RNG state; use "
                    f"numpy.random.default_rng(seed) or a sim.rng stream")


# -- DET003: set iteration order ----------------------------------------------

#: Builtins that materialize or enumerate their argument in order.
ORDER_SENSITIVE_FUNCS = frozenset({
    "list", "tuple", "enumerate", "iter", "reversed", "map", "filter",
})

#: Method names that consume an iterable in order.
ORDER_SENSITIVE_METHODS = frozenset({"join", "extend"})


def _returns_set(node: ast.expr, set_names: frozenset[str]) -> bool:
    """Whether ``node`` is syntactically set-valued."""
    if isinstance(node, (ast.Set, ast.SetComp)):
        return True
    if isinstance(node, ast.Call) and isinstance(node.func, ast.Name) \
            and node.func.id in ("set", "frozenset"):
        return True
    if isinstance(node, ast.Name) and node.id in set_names:
        return True
    if isinstance(node, ast.BinOp) and isinstance(
            node.op, (ast.BitOr, ast.BitAnd, ast.Sub, ast.BitXor)):
        # Set algebra (a | b, a & b, a - b, a ^ b) stays a set.
        return (_returns_set(node.left, set_names)
                or _returns_set(node.right, set_names))
    return False


def _scope_statements(scope: ast.AST) -> Iterator[ast.AST]:
    """Walk a scope without descending into nested function scopes."""
    body = scope.body if isinstance(
        scope, (ast.FunctionDef, ast.AsyncFunctionDef, ast.Module)) else []
    stack = list(body)
    while stack:
        node = stack.pop()
        yield node
        if isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef,
                             ast.Lambda)):
            continue  # nested scope: visited on its own
        for child in ast.iter_child_nodes(node):
            stack.append(child)


def _set_locals(scope: ast.AST) -> frozenset[str]:
    """Names whose every binding in ``scope`` is a set-valued expression."""
    bindings: dict[str, list[bool]] = {}
    disqualified: set[str] = set()
    for node in _scope_statements(scope):
        if isinstance(node, ast.Assign) and len(node.targets) == 1 \
                and isinstance(node.targets[0], ast.Name):
            bindings.setdefault(node.targets[0].id, []).append(
                _returns_set(node.value, frozenset()))
        elif isinstance(node, ast.AnnAssign) \
                and isinstance(node.target, ast.Name) \
                and node.value is not None:
            bindings.setdefault(node.target.id, []).append(
                _returns_set(node.value, frozenset()))
        elif isinstance(node, (ast.For, ast.AsyncFor)):
            for name in ast.walk(node.target):
                if isinstance(name, ast.Name):
                    disqualified.add(name.id)
        elif isinstance(node, ast.AugAssign) \
                and isinstance(node.target, ast.Name):
            disqualified.add(node.target.id)
    return frozenset(name for name, values in bindings.items()
                     if all(values) and name not in disqualified)


class OrderingChecker(Checker):
    """DET003 — iterating sets without an explicit order."""

    id = "DET003"
    title = "set iteration order"
    rationale = (
        "Set iteration order depends on insertion history and hash "
        "salting; iterating one unsorted feeds arbitrary order into "
        "schedules, digests, and reports. sorted(...) makes the order "
        "part of the program, not the interpreter.")
    example_bad = "for key in pending:  # pending is a set"
    example_good = "for key in sorted(pending):"

    def check(self, module: SourceModule) -> Iterator[Finding]:
        scopes = [module.tree] + [
            node for node in ast.walk(module.tree)
            if isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef))]
        for scope in scopes:
            set_names = _set_locals(scope)
            for node in _scope_statements(scope):
                yield from self._check_node(module, node, set_names)

    def _check_node(self, module: SourceModule, node: ast.AST,
                    set_names: frozenset[str]) -> Iterator[Finding]:
        def flag(expr: ast.expr, context: str) -> Iterator[Finding]:
            if _returns_set(expr, set_names):
                yield module.finding(
                    expr, self.id,
                    f"{context} iterates a set in hash order; wrap in "
                    f"sorted(...) or keep insertion order with dict/list")

        if isinstance(node, (ast.For, ast.AsyncFor)):
            yield from flag(node.iter, "for-loop")
        elif isinstance(node, (ast.ListComp, ast.GeneratorExp, ast.DictComp)):
            for comp in node.generators:
                yield from flag(comp.iter, "comprehension")
        elif isinstance(node, ast.Starred):
            yield from flag(node.value, "unpacking (*)")
        elif isinstance(node, ast.Call):
            if isinstance(node.func, ast.Name) \
                    and node.func.id in ORDER_SENSITIVE_FUNCS:
                for arg in node.args:
                    yield from flag(arg, f"{node.func.id}(...)")
            elif isinstance(node.func, ast.Attribute) \
                    and node.func.attr in ORDER_SENSITIVE_METHODS:
                for arg in node.args:
                    yield from flag(arg, f".{node.func.attr}(...)")


# -- DET004: identity-based ordering ------------------------------------------


class IdentityOrderChecker(Checker):
    """DET004 — ``id()`` keys/ordering (memory addresses vary per run)."""

    id = "DET004"
    title = "id()-based ordering"
    rationale = (
        "id() is an allocation address: unique within a run, "
        "arbitrary across runs. Keying or ordering by it bakes the "
        "allocator's mood into the output. Identity-keyed *memos* are "
        "fine (suppress with a reason); identity-keyed *order* never "
        "is.")
    example_bad = "items.sort(key=id)"
    example_good = "items.sort(key=lambda item: item.name)"

    def check(self, module: SourceModule) -> Iterator[Finding]:
        for node in ast.walk(module.tree):
            if isinstance(node, ast.Call):
                if isinstance(node.func, ast.Name) and node.func.id == "id" \
                        and len(node.args) == 1:
                    yield module.finding(
                        node, self.id,
                        "id() yields a memory address — nondeterministic "
                        "across runs; key/order by a stable sequence number")
                for keyword in node.keywords:
                    if keyword.arg == "key" \
                            and isinstance(keyword.value, ast.Name) \
                            and keyword.value.id == "id":
                        yield module.finding(
                            keyword.value, self.id,
                            "key=id orders by memory address — "
                            "nondeterministic across runs; use a stable "
                            "attribute as the sort key")
