"""DET005 — RNG seed provenance, across module boundaries.

DET002 catches the *global* RNGs; this checker tracks the *local* ones.
A ``random.Random(seed)`` or ``numpy.random.default_rng(seed)`` object
is deterministic only relative to the component that owns its draw
sequence. Two provenance bugs survive DET002:

* **Cross-layer draws** — a generator constructed at module scope in
  layer A and drawn from in layer B couples the two layers' draw
  sequences: adding one draw in A perturbs every subsequent draw B
  sees, which is exactly the coupling named seeded streams
  (:mod:`repro.sim.rng`) exist to prevent, and it becomes a
  correctness bug the moment layers run as parallel shard domains
  (ROADMAP item 5) sharing one generator object.
* **Unstable derived seeds** — a seed derived from ``hash()`` (salted
  per process by PYTHONHASHSEED), ``id()`` (a memory address), or a
  wall clock yields a different stream every run. Derive child seeds
  from a stable content hash (``hashlib``, as ``repro.sim.rng._digest``
  does) or SeedSequence spawning.
"""

from __future__ import annotations

from typing import Iterator

from repro.lint.arch import layer_of
from repro.lint.framework import Finding
from repro.lint.project import ProjectChecker, ProjectIndex


class SeedProvenanceChecker(ProjectChecker):
    """DET005 — RNG objects drawn outside their layer; unstable seeds."""

    id = "DET005"
    title = "RNG seed provenance"
    severity = "error"
    rationale = (
        "A seeded generator is deterministic only relative to its "
        "owner's draw sequence. Drawing from another layer's generator "
        "couples the layers' sequences (any new draw upstream perturbs "
        "every draw downstream) and shares one mutable RNG object "
        "across future shard-parallel domains. Seeds derived from "
        "hash()/id()/wall clocks differ across processes and runs, so "
        "the 'same seed' never reproduces the same stream.")
    example_bad = (
        "# repro/engine/noise.py\n"
        "GEN = np.random.default_rng(7)\n"
        "# repro/serve/gateway.py\n"
        "from repro.engine.noise import GEN\n"
        "jitter = GEN.random()          # cross-layer draw\n"
        "rng = random.Random(hash(name))  # salted, differs per process\n")
    example_good = (
        "rng = sim.rng.stream('serve.gateway')   # named, layer-local\n"
        "seed = int.from_bytes(\n"
        "    hashlib.sha256(name.encode()).digest()[:8], 'little')\n")

    def check_project(self, index: ProjectIndex) -> Iterator[Finding]:
        for name in sorted(index.modules):
            module_index = index.modules[name]
            yield from self._unstable_seeds(module_index)
            yield from self._cross_layer_draws(index, module_index)

    def _unstable_seeds(self, module_index: dict) -> Iterator[Finding]:
        for site in module_index["unstable_seeds"]:
            ctor = site["ctor"].rsplit(".", 1)[-1]
            yield self.finding(
                module_index, site,
                f"seed for {ctor}() is derived from {site['via']} — "
                f"unstable across runs/processes; derive it from a "
                f"stable content hash (hashlib, sim.rng style) instead")

    def _cross_layer_draws(self, index: ProjectIndex,
                           module_index: dict) -> Iterator[Finding]:
        drawing_module = module_index["module"]
        drawing_layer = layer_of(drawing_module) if drawing_module else None
        for draw in module_index["rng_draws"]:
            owner, symbol = index.split_symbol(draw["target"])
            if owner is None or owner == drawing_module:
                continue
            owner_index = index.modules[owner]
            root = symbol.split(".")[0]
            if root not in owner_index["rng_globals"]:
                continue
            owner_layer = layer_of(owner)
            if owner_layer is None or owner_layer == drawing_layer:
                continue
            yield self.finding(
                module_index, draw,
                f"RNG '{owner}.{root}' is constructed in layer "
                f"'{owner_layer}' but '.{draw['method']}()' draws from "
                f"it in layer '{drawing_layer}'; draw sequences must "
                f"stay layer-local — take a named sim.rng stream or a "
                f"generator passed in explicitly")
