"""Incremental lint cache: skip phase 1 for unchanged files.

The strict gate runs on every CI push and, increasingly, on every local
commit; as the tree grows, re-parsing ~200 files to re-derive identical
findings is the dominant cost. The cache stores each file's phase-1
products — raw findings, the :mod:`repro.lint.project` module index,
and the suppression table — keyed by the file's content SHA-256.
Phase 2 (the whole-program checkers) always runs fresh from the
indexes, so cross-module findings can never go stale.

Two invalidation rules, both total:

* **Per file** — any content change flips the SHA and the entry is
  recomputed. Renames miss (the key includes the display path) and
  deletions are dropped on save (only looked-up-or-stored entries are
  written back).
* **Per lint version** — the cache embeds a fingerprint hashed over the
  source of the ``repro.lint`` package itself; editing any checker
  discards the whole cache. No manual schema bumps to forget.

The cache changes *when* work happens, never *what* comes out: output
is byte-identical with a cold, warm, or absent cache (property-tested).
"""

from __future__ import annotations

import hashlib
import json
from pathlib import Path
from typing import Optional

from repro.lint.framework import Finding, Suppression

CACHE_VERSION = 1


def lint_fingerprint() -> str:
    """SHA-256 over the ``repro.lint`` package's own sources.

    Any edit to a checker, the framework, or the index format changes
    the fingerprint and invalidates every cached entry — the cache can
    never serve findings computed by a different analyzer.
    """
    package_dir = Path(__file__).resolve().parent
    digest = hashlib.sha256()
    for source in sorted(package_dir.glob("*.py"),
                         key=lambda p: p.name):
        digest.update(source.name.encode("utf-8"))
        digest.update(b"\0")
        digest.update(source.read_bytes())
        digest.update(b"\0")
    return digest.hexdigest()


def file_sha(source_bytes: bytes) -> str:
    return hashlib.sha256(source_bytes).hexdigest()


class LintCache:
    """Per-file phase-1 memo, persisted as plain JSON."""

    def __init__(self, path: Path, fingerprint: Optional[str] = None
                 ) -> None:
        self.path = Path(path)
        self.fingerprint = fingerprint or lint_fingerprint()
        self.entries: dict[str, dict] = {}
        self._live: dict[str, dict] = {}
        self.hits = 0
        self.misses = 0
        self._load()

    def _load(self) -> None:
        if not self.path.exists():
            return
        try:
            data = json.loads(self.path.read_text(encoding="utf-8"))
        except (OSError, ValueError):
            return  # corrupt cache == cold cache
        if data.get("version") != CACHE_VERSION \
                or data.get("fingerprint") != self.fingerprint:
            return
        entries = data.get("entries")
        if isinstance(entries, dict):
            self.entries = entries

    def lookup(self, display_path: str, source_bytes: bytes
               ) -> Optional[tuple[list[Finding], dict,
                                   dict[int, Suppression]]]:
        """Cached (findings, index, suppressions) for an unchanged file."""
        entry = self.entries.get(display_path)
        if entry is None or entry.get("sha") != file_sha(source_bytes):
            self.misses += 1
            return None
        self.hits += 1
        self._live[display_path] = entry
        findings = [Finding.from_dict(f) for f in entry["findings"]]
        suppressions = {s["line"]: Suppression.from_dict(s)
                        for s in entry["suppressions"]}
        return findings, entry["index"], suppressions

    def store(self, display_path: str, source_bytes: bytes,
              findings: list[Finding], index: dict,
              suppressions: dict[int, Suppression]) -> None:
        entry = {
            "sha": file_sha(source_bytes),
            "findings": [f.to_dict() for f in findings],
            "index": index,
            "suppressions": [suppressions[line].to_dict()
                             for line in sorted(suppressions)],
        }
        self.entries[display_path] = entry
        self._live[display_path] = entry

    def save(self) -> None:
        """Write back only the entries this run touched (drops deletions).

        The cache is a private scratch file, not an artifact: plain
        ``json.dumps`` is deliberate, and byte-stability of *lint
        output* never depends on this file's bytes.
        """
        payload = {
            "version": CACHE_VERSION,
            "fingerprint": self.fingerprint,
            "entries": {path: self._live[path]
                        for path in sorted(self._live)},
        }
        try:
            self.path.write_text(
                json.dumps(payload, sort_keys=True),  # repro-lint: disable=ARCH002 private scratch cache, not a committed artifact
                encoding="utf-8")
        except OSError:
            pass  # read-only tree: run uncached next time
