"""Sandboxed execution environments (micro-VMs) of the FaaS worker fleet."""

from __future__ import annotations

import itertools
from dataclasses import dataclass, field

from repro.network.fabric import Endpoint


@dataclass
class Sandbox:
    """One Firecracker-style execution environment for a function.

    A sandbox keeps the function binary and runtime initialized between
    invocations (enabling warmstarts) and owns a network endpoint with its
    own ingress/egress token buckets — the per-function network budget of
    Section 4.2 belongs to the sandbox, not the invocation.
    """

    _ids = itertools.count()

    function: str
    endpoint: Endpoint
    created_at: float
    idle_lifetime: float
    id: int = field(default_factory=lambda: next(Sandbox._ids))
    last_used_at: float = 0.0
    busy: bool = False
    invocations: int = 0

    def expired(self, now: float) -> bool:
        """Whether the platform would have reclaimed this idle sandbox."""
        return not self.busy and (now - self.last_used_at) > self.idle_lifetime
