"""Function configuration, invocation records, and handler context."""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Callable, Optional

from repro import units
from repro.pricing.catalog import LAMBDA_PRICING

#: Lambda memory configuration bounds (Table 1).
MIN_MEMORY = 128 * units.MiB
MAX_MEMORY = 10_240 * units.MiB

#: Lambda ephemeral storage bounds (Table 1).
MIN_EPHEMERAL = 512 * units.MiB
MAX_EPHEMERAL = 10 * units.GiB

#: Maximum function execution time (15 minutes) [40].
MAX_DURATION_S = 900.0


@dataclass(frozen=True)
class FunctionConfig:
    """A deployed cloud function: binary plus sizing configuration.

    ``handler`` is a generator function ``handler(context, payload)``
    executed as a simulation process — the Python stand-in for the
    function binary.
    """

    name: str
    handler: Callable[["FunctionContext", Any], Any]
    memory_bytes: float = 1_769 * units.MiB
    binary_bytes: float = 8 * units.MiB
    ephemeral_bytes: float = 512 * units.MiB

    def __post_init__(self) -> None:
        if not MIN_MEMORY <= self.memory_bytes <= MAX_MEMORY:
            raise ValueError(
                f"memory {self.memory_bytes / units.MiB:.0f} MiB outside "
                f"Lambda's 128 MiB - 10 GiB range")
        if not MIN_EPHEMERAL <= self.ephemeral_bytes <= MAX_EPHEMERAL:
            raise ValueError("ephemeral storage outside 512 MiB - 10 GiB")

    @property
    def vcpus(self) -> float:
        """vCPU-equivalents: 1 per 1,769 MiB of memory [39, 40]."""
        return self.memory_bytes / LAMBDA_PRICING.memory_per_vcpu_bytes


@dataclass
class InvocationRecord:
    """Outcome and accounting data of one function invocation."""

    function: str
    sandbox_id: int
    cold: bool
    requested_at: float
    started_at: float
    finished_at: float
    response: Any = None
    error: Optional[BaseException] = None

    @property
    def init_duration(self) -> float:
        """Startup overhead (queueing + coldstart) before the handler ran."""
        return self.started_at - self.requested_at

    @property
    def duration(self) -> float:
        """Billed duration: handler execution time."""
        return self.finished_at - self.started_at

    @property
    def total_latency(self) -> float:
        """End-to-end latency the invoker observed."""
        return self.finished_at - self.requested_at

    @property
    def ok(self) -> bool:
        """Whether the handler completed without raising."""
        return self.error is None


@dataclass
class FunctionContext:
    """Execution context handed to a running function handler.

    Exposes the sandbox's network endpoint (for storage and network I/O
    through the simulated fabric), the function sizing, and simulation
    facilities.
    """

    env: Any
    platform: Any
    config: FunctionConfig
    endpoint: Any
    sandbox_id: int
    cold: bool
    region: str = "us-east-1"
    trace: dict[str, float] = field(default_factory=dict)
    #: Telemetry span context of the platform's invoke span (a
    #: :class:`repro.telemetry.Span` or ``None`` when not recording);
    #: handlers parent their own spans under it.
    trace_ctx: Any = None

    @property
    def vcpus(self) -> float:
        """vCPU-equivalents available to the handler."""
        return self.config.vcpus

    def compute(self, cpu_seconds: float):
        """Event: spend ``cpu_seconds`` of single-core CPU work.

        The work parallelizes perfectly across the function's vCPUs, which
        matches the vectorized, embarrassingly parallel operators the
        Skyrise engine runs.
        """
        wall = cpu_seconds / max(self.vcpus, 0.25)
        return self.env.timeout(wall)

    def mark(self, label: str) -> None:
        """Record a trace timestamp under ``label``."""
        self.trace[label] = self.env.now
