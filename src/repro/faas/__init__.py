"""AWS Lambda FaaS platform simulator.

Models the architecture of Figure 1: a frontend that checks the account's
concurrency quota with the *admission* service, routes to a warm sandbox
via the *assignment* service, or asks the *placement* service to create a
new execution environment (a *coldstart*: binary download plus runtime
initialization). Sandboxes are reclaimed after an idle lifetime.

Scaling follows the documented Lambda behaviour [37]: an initial burst of
up to 3,000 concurrent environments, then +500 per minute of sustained
load, bounded by the account's concurrency quota.

Each sandbox owns a network endpoint with the dual token-bucket shapers of
Section 4.2, so functions running on the platform automatically exhibit
the burst/baseline network behaviour of Figures 5-7.
"""

from repro.faas.function import FunctionConfig, FunctionContext, InvocationRecord
from repro.faas.platform import LambdaPlatform
from repro.faas.regions import REGIONS, RegionProfile
from repro.faas.scaling import ConcurrencyScaler
from repro.faas.triggers import MessageQueue, QueueTrigger

__all__ = [
    "ConcurrencyScaler",
    "MessageQueue",
    "QueueTrigger",
    "FunctionConfig",
    "FunctionContext",
    "InvocationRecord",
    "LambdaPlatform",
    "REGIONS",
    "RegionProfile",
]
