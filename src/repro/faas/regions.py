"""Regional profiles of the Lambda platform.

Section 4.6 finds pronounced differences between AWS regions: starting
large function clusters in eu-west-1 takes ~1.5x as long as in us-east-1
(likely regional contention), while local/temporal variability is highest
in us-east-1 for infrequent ("cold") usage and drops with frequent usage.

A :class:`RegionProfile` captures this as (a) a startup multiplier applied
to coldstart latencies and (b) congestion noise: a multiplicative factor
redrawn per 15-minute epoch, lognormal with a configurable coefficient of
variation — larger for sporadic usage (resources get reclaimed and
re-provisioned) than for sustained usage.
"""

from __future__ import annotations

import math
from dataclasses import dataclass

import numpy as np

#: Seconds per congestion epoch: regional conditions are redrawn this often.
CONGESTION_EPOCH_S = 900.0


@dataclass(frozen=True)
class RegionProfile:
    """Performance personality of one AWS region."""

    name: str
    #: Multiplier on coldstart/startup latencies relative to us-east-1.
    startup_multiplier: float
    #: Regional end-to-end runtime factor relative to us-east-1 (the MR
    #: column of Table 5 — dominated by slower cluster startup in the EU).
    runtime_multiplier: float
    #: Coefficient of variation of the congestion factor for sporadic
    #: ("cold") usage patterns.
    cold_cov: float
    #: Coefficient of variation under sustained ("warm") usage.
    warm_cov: float
    #: Initial concurrency burst available in this region [37].
    burst_concurrency: int = 3_000

    def congestion(self, rng: np.random.Generator, now: float,
                   warm: bool) -> float:
        """Multiplicative congestion factor for the epoch containing ``now``.

        Drawn lognormal with unit mean and the profile's CoV; the epoch
        index seeds the draw so repeated queries within an epoch see the
        same conditions.
        """
        cov = self.warm_cov if warm else self.cold_cov
        if cov <= 0:
            return 1.0
        sigma = math.sqrt(math.log(1.0 + cov * cov))
        # Unit-mean lognormal: mu = -sigma^2 / 2.
        return float(rng.lognormal(mean=-sigma * sigma / 2.0, sigma=sigma))


#: Calibrated to Table 5: EU startup ~1.5x the US; cold-usage variability
#: highest in the US, lowest in the EU; warm variability moderate
#: everywhere.
REGIONS: dict[str, RegionProfile] = {
    "us-east-1": RegionProfile(name="us-east-1", startup_multiplier=1.00,
                               runtime_multiplier=1.00,
                               cold_cov=0.2265, warm_cov=0.0523),
    "eu-west-1": RegionProfile(name="eu-west-1", startup_multiplier=1.50,
                               runtime_multiplier=1.50,
                               cold_cov=0.0476, warm_cov=0.0896),
    "ap-northeast-1": RegionProfile(name="ap-northeast-1",
                                    startup_multiplier=0.95,
                                    runtime_multiplier=0.955,
                                    cold_cov=0.0765, warm_cov=0.0644),
}
