"""The Lambda platform: frontend, admission, assignment, placement.

Invocation path (Figure 1): the frontend checks the admission service
(account concurrency quota and burst/ramp scaling), asks the assignment
service for a warm sandbox, and falls back to the placement service which
creates a new environment — a *coldstart* that downloads and initializes
the binary. Asynchronous invocations pass through the polling service,
adding queueing latency.
"""

from __future__ import annotations

import math

from typing import Any, Optional

from repro import units
from repro.network.fabric import Fabric, FluidLink
from repro.network.shaper import lambda_shaper
from repro.sim import AnyOf, Environment, RandomStreams
from repro.faas.function import FunctionConfig, FunctionContext, InvocationRecord
from repro.faas.regions import REGIONS, RegionProfile
from repro.faas.sandbox import Sandbox
from repro.faas.scaling import ConcurrencyScaler
from repro.telemetry import get_recorder

#: Placement overhead of creating a fresh environment (seconds).
COLDSTART_PLACEMENT_S = 0.060
#: Effective bandwidth for fetching the function binary during placement.
COLDSTART_DOWNLOAD_RATE = 50 * units.MiB
#: Runtime/initialization overhead after the binary is in place.
COLDSTART_INIT_S = 0.030
#: Probability of a coldstart straggler (Section 5.2 mentions occasional
#: coldstart stragglers, in particular for the coordinator).
COLDSTART_STRAGGLER_P = 0.02
COLDSTART_STRAGGLER_FACTOR = 8.0

#: Routing overhead of a warmstart: load balancing, assignment, and
#: payload delivery take ~25 ms even when the sandbox is hot — the
#: per-stage startup overhead behind the FaaS runtime penalty of
#: Section 5.2.
WARMSTART_S = 0.025

#: Extra latency of the polling service for async invocations/events.
ASYNC_POLL_S = 0.025

#: Idle sandbox lifetime: median ~6 minutes, broadly spread.
IDLE_LIFETIME_MEDIAN_S = 360.0
IDLE_LIFETIME_SIGMA = 0.5

#: Re-check interval while waiting for concurrency to scale up.
ADMISSION_RETRY_S = 1.0

#: Handler time billed by a keep-alive ping (a no-op invocation that
#: only refreshes the sandbox's idle timer).
KEEPALIVE_PING_S = 0.010


class LambdaPlatform:
    """Simulated AWS Lambda in one region."""

    def __init__(self, env: Environment, fabric: Fabric, rng: RandomStreams,
                 region: str = "us-east-1",
                 account_quota: int = 1_000,
                 vpc_link: Optional[FluidLink] = None) -> None:
        self.env = env
        self.fabric = fabric
        self.region: RegionProfile = (
            REGIONS[region] if isinstance(region, str) else region)
        self.account_quota = account_quota
        self.vpc_link = vpc_link
        self.scaler = ConcurrencyScaler(
            burst_limit=self.region.burst_concurrency,
            account_quota=account_quota)
        self._functions: dict[str, FunctionConfig] = {}
        self._warm: dict[str, list[Sandbox]] = {}
        self._busy = 0
        self.records: list[InvocationRecord] = []
        self._rng = rng.stream(f"faas.{self.region.name}")
        #: Chaos hook (:class:`repro.chaos.injector.FaultInjector` or
        #: anything with the same ``on_invoke``/``on_place`` surface).
        #: ``None`` means no injection — the default, fault-free path.
        self.fault_injector = None
        recorder = get_recorder()
        self._telemetry = recorder if recorder.enabled else None
        if self._telemetry is not None:
            self._cold_counter = recorder.counter("lambda.cold_starts")
            self._warm_counter = recorder.counter("lambda.warm_starts")
            self._concurrent_gauge = recorder.gauge("lambda.concurrent")
            self._concurrent_series = recorder.timeseries(
                "lambda.concurrent", min_dt=0.001)
            self._sandbox_serials: dict[int, int] = {}

    def _note_busy(self) -> None:
        """Sample the concurrency watermark after a busy-count change."""
        self._concurrent_gauge.set(float(self._busy))
        self._concurrent_series.sample(self.env.now, float(self._busy))

    def _sandbox_tag(self, sandbox: Sandbox) -> int:
        """Dense per-platform serial for a sandbox, for telemetry attrs.

        ``Sandbox.id`` comes from a process-global counter, so its value
        depends on every sandbox ever created in the process. Trace
        artifacts must be a function of the simulation alone, so spans
        and events carry this platform-local serial instead.
        """
        return self._sandbox_serials.setdefault(
            sandbox.id, len(self._sandbox_serials))

    # -- deployment ----------------------------------------------------------

    def deploy(self, config: FunctionConfig) -> None:
        """Register a function (idempotent for the same name)."""
        self._functions[config.name] = config
        self._warm.setdefault(config.name, [])

    def function(self, name: str) -> FunctionConfig:
        """Look up a deployed function."""
        try:
            return self._functions[name]
        except KeyError:
            raise KeyError(f"function {name!r} is not deployed") from None

    @property
    def concurrent_executions(self) -> int:
        """Sandboxes currently executing a handler."""
        return self._busy

    def warm_sandbox_count(self, name: str) -> int:
        """Live warm (idle, unexpired) sandboxes for a function."""
        now = self.env.now
        pool = self._warm.get(name, [])
        return sum(1 for sandbox in pool if not sandbox.expired(now))

    # -- invocation -----------------------------------------------------------

    def invoke(self, name: str, payload: Any = None):
        """Process: synchronously invoke ``name`` with ``payload``.

        Returns the :class:`InvocationRecord`; a handler exception is
        recorded and re-raised.
        """
        record = yield from self._invoke(name, payload,
                                         requested_at=self.env.now)
        if record.error is not None:
            raise record.error
        return record

    def invoke_async(self, name: str, payload: Any = None):
        """Process: invoke via the polling service (extra latency).

        Returns the record; errors are captured on it, not raised (an
        async caller never observes them directly).
        """
        requested_at = self.env.now
        yield self.env.timeout(ASYNC_POLL_S)
        record = yield from self._invoke(name, payload,
                                         requested_at=requested_at)
        return record

    def _invoke(self, name: str, payload: Any, requested_at: float):
        config = self.function(name)
        span = None
        if self._telemetry is not None:
            parent = payload.get("trace") if isinstance(payload, dict) else None
            attrs = {"function": name,
                     "memory_mb": round(config.memory_bytes / units.MiB, 3)}
            if isinstance(payload, dict):
                if "attempt" in payload:
                    attrs["attempt"] = payload["attempt"]
                if "hedged" in payload:
                    attrs["hedged"] = payload["hedged"]
            span = self._telemetry.start_span(
                f"invoke {name}", requested_at, parent=parent,
                category="faas", attrs=attrs)
        # Chaos hook: one fault (at most) may strike this invocation.
        fault = None
        if self.fault_injector is not None:
            fault = self.fault_injector.on_invoke(name, payload, self.env.now)
        if fault is not None and fault.kind == "invoke_throttle" \
                and fault.delay_s > 0:
            # Frontend pushback: the request queues before admission, so
            # the delay adds latency but is never billed.
            yield self.env.timeout(fault.delay_s)
        # Admission: wait for concurrency (burst + 500/min ramp + quota).
        while not self.scaler.admit(self._busy, self.env.now):
            yield self.env.timeout(ADMISSION_RETRY_S)
        self._busy += 1
        if self._telemetry is not None:
            self._note_busy()
        sandbox, cold = self._assign(config)
        sandbox.busy = True
        lost = False
        try:
            startup_began = self.env.now
            if cold:
                yield self.env.timeout(self._coldstart_duration(config))
            else:
                yield self.env.timeout(WARMSTART_S)
            started_at = self.env.now
            if self._telemetry is not None:
                (self._cold_counter if cold else self._warm_counter).inc()
                self._telemetry.record_span(
                    "coldstart" if cold else "warmstart",
                    startup_began, started_at, parent=span, category="faas",
                    attrs={"sandbox_id": self._sandbox_tag(sandbox)})
            context = FunctionContext(
                env=self.env, platform=self, config=config,
                endpoint=sandbox.endpoint, sandbox_id=sandbox.id,
                cold=cold, region=self.region.name, trace_ctx=span)
            response = None
            error: Optional[BaseException] = None
            if fault is not None and fault.kind == "worker_crash":
                # The invocation dies before the handler produces a
                # result; the brief run-up is still billed.
                if fault.delay_s > 0:
                    yield self.env.timeout(fault.delay_s)
                error = fault.make_error()
            else:
                if fault is not None and fault.kind == "invoke_straggler" \
                        and fault.delay_s > 0:
                    # Delayed handler start inside the sandbox (billed).
                    yield self.env.timeout(fault.delay_s)
                handler_process = self.env.process(
                    config.handler(context, payload), name=f"fn-{name}")
                try:
                    if fault is not None and fault.kind == "sandbox_loss":
                        # Race the handler against sandbox reclamation.
                        doom = self.env.timeout(fault.after_s)
                        yield AnyOf(self.env, [handler_process, doom])
                        if handler_process.processed:
                            response = handler_process.value
                        else:
                            handler_process.interrupt("sandbox lost")
                            handler_process.defuse()
                            error = fault.make_error()
                            lost = True
                    else:
                        response = yield handler_process
                except BaseException as exc:  # noqa: BLE001 - recorded, re-raised
                    error = exc
            record = InvocationRecord(
                function=name, sandbox_id=sandbox.id, cold=cold,
                requested_at=requested_at, started_at=started_at,
                finished_at=self.env.now, response=response, error=error)
            self.records.append(record)
            if span is not None:
                span.finish(self.env.now, cold=cold,
                            sandbox_id=self._sandbox_tag(sandbox),
                            ok=error is None)
                self._telemetry.histogram(
                    "lambda.invoke.duration_s").observe(
                        self.env.now - requested_at)
            return record
        finally:
            sandbox.busy = False
            sandbox.last_used_at = self.env.now
            sandbox.invocations += 1
            if not lost:
                # A sandbox reclaimed by a sandbox_loss fault is gone —
                # re-pooling it would let a later invocation warmstart
                # on infrastructure that no longer exists.
                self._warm[name].append(sandbox)
            self._busy -= 1
            if self._telemetry is not None:
                self._note_busy()

    # -- warm pools ----------------------------------------------------------

    def keep_alive(self, name: str, count: int = 1):
        """Process: ping up to ``count`` sandboxes of ``name`` to stay warm.

        The standard provisioning trick on Lambda: periodic no-op
        invocations reset the idle-reclamation timer, so later real
        invocations warmstart instead of paying the coldstart path.
        Each ping is billed like a (very short) invocation; a ping that
        finds no idle sandbox *creates* one — paying the coldstart now,
        off the latency path of real traffic. Pings are skipped (not
        queued) when the account has no concurrency headroom, so a warm
        pool never throttles live queries.

        Returns ``{"hits": refreshed, "misses": created, "skipped": n}``.
        """
        if count <= 0:
            raise ValueError(f"count must be positive, got {count}")
        stats = {"hits": 0, "misses": 0, "skipped": 0}
        pings = []
        for _ in range(count):
            if not self.scaler.admit(self._busy, self.env.now):
                stats["skipped"] += 1
                continue
            self._busy += 1
            if self._telemetry is not None:
                self._note_busy()
            sandbox, cold = self._assign(self.function(name))
            sandbox.busy = True
            stats["misses" if cold else "hits"] += 1
            pings.append(self.env.process(
                self._ping(name, sandbox, cold), name=f"ping-{name}"))
        for ping in pings:
            yield ping
        return stats

    def _ping(self, name: str, sandbox: Sandbox, cold: bool):
        config = self.function(name)
        requested_at = self.env.now
        try:
            if cold:
                yield self.env.timeout(self._coldstart_duration(config))
            else:
                yield self.env.timeout(WARMSTART_S)
            started_at = self.env.now
            yield self.env.timeout(KEEPALIVE_PING_S)
            self.records.append(InvocationRecord(
                function=name, sandbox_id=sandbox.id, cold=cold,
                requested_at=requested_at, started_at=started_at,
                finished_at=self.env.now, response="keep-alive"))
        finally:
            sandbox.busy = False
            sandbox.last_used_at = self.env.now
            sandbox.invocations += 1
            self._warm[name].append(sandbox)
            self._busy -= 1
            if self._telemetry is not None:
                self._note_busy()

    # -- assignment / placement -------------------------------------------------

    def _assign(self, config: FunctionConfig) -> tuple[Sandbox, bool]:
        """Route to a warm sandbox or create a fresh one (coldstart)."""
        now = self.env.now
        pool = self._warm[config.name]
        # Reclaim expired sandboxes lazily.
        pool[:] = [sandbox for sandbox in pool if not sandbox.expired(now)]
        if pool:
            return pool.pop(), False
        return self._place(config), True

    def _place(self, config: FunctionConfig) -> Sandbox:
        links = (self.vpc_link,) if self.vpc_link is not None else ()
        endpoint = self.fabric.endpoint(
            f"sandbox-{config.name}",
            ingress=lambda_shaper("in"), egress=lambda_shaper("out"),
            links=links)
        if self.fault_injector is not None:
            factor = self.fault_injector.on_place(config.name, self.env.now)
            if factor is not None:
                # Degraded placement: this sandbox drew a slow NIC.
                if endpoint.ingress is not None:
                    endpoint.ingress.degrade(factor)
                if endpoint.egress is not None:
                    endpoint.egress.degrade(factor)
        idle_lifetime = float(self._rng.lognormal(
            mean=math.log(IDLE_LIFETIME_MEDIAN_S),
            sigma=IDLE_LIFETIME_SIGMA))
        sandbox = Sandbox(function=config.name, endpoint=endpoint,
                          created_at=self.env.now,
                          idle_lifetime=idle_lifetime)
        if self._telemetry is not None:
            self._telemetry.counter("lambda.sandboxes_placed").value += 1
            self._telemetry.event(
                self.env.now, "sandbox.placed", category="faas",
                function=config.name,
                sandbox_id=self._sandbox_tag(sandbox))
        return sandbox

    def _coldstart_duration(self, config: FunctionConfig) -> float:
        base = (COLDSTART_PLACEMENT_S
                + config.binary_bytes / COLDSTART_DOWNLOAD_RATE
                + COLDSTART_INIT_S)
        base *= self.region.startup_multiplier
        base *= self.region.congestion(self._rng, self.env.now, warm=False)
        if self._rng.random() < COLDSTART_STRAGGLER_P:
            base *= COLDSTART_STRAGGLER_FACTOR
        # Per-coldstart jitter on top of regional conditions.
        base *= float(self._rng.lognormal(mean=0.0, sigma=0.15))
        return base
