"""Event-source triggers: the polling service of Figure 1.

Cloud functions are invoked by users via HTTP or by *triggers* on events
from queues and streams (Section 2.1): "asynchronous requests and events
are received by the polling service which polls their payloads from
internal and external queues ... and invokes functions as a proxy,
adding further latency to the invocation path."

:class:`QueueTrigger` wires a simulated message queue (a kernel
:class:`~repro.sim.Store`) to a deployed function: a poller process
drains messages in batches and dispatches one asynchronous invocation
per message, bounded by a concurrency limit.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.faas.function import InvocationRecord
from repro.sim import AnyOf, Environment, Store

#: Poll interval of the polling service (long-poll granularity).
POLL_INTERVAL_S = 0.02

#: Messages fetched per poll (SQS-style batch size).
DEFAULT_BATCH_SIZE = 10


@dataclass
class TriggerStats:
    """Delivery accounting of one trigger."""

    polled: int = 0
    invoked: int = 0
    failed: int = 0
    delivery_latencies: list[float] = field(default_factory=list)


class MessageQueue:
    """A minimal SQS-like queue on the simulation kernel."""

    def __init__(self, env: Environment, name: str = "queue") -> None:
        self.env = env
        self.name = name
        self._store = Store(env)
        self.sent = 0

    def send(self, body) -> None:
        """Enqueue a message (non-blocking; unbounded queue)."""
        self.sent += 1
        self._store.put({"body": body, "sent_at": self.env.now})

    def receive(self):
        """Event: the oldest message (blocks while empty)."""
        return self._store.get()

    @property
    def depth(self) -> int:
        """Messages currently waiting."""
        return len(self._store.items)


class QueueTrigger:
    """Polls a queue and invokes a function per message.

    ``concurrency`` bounds in-flight invocations (Lambda's event-source
    mapping scaling); delivery latency (send -> handler start) lands in
    :attr:`stats`.
    """

    def __init__(self, env: Environment, platform, queue: MessageQueue,
                 function_name: str,
                 batch_size: int = DEFAULT_BATCH_SIZE,
                 concurrency: int = 10) -> None:
        if batch_size <= 0 or concurrency <= 0:
            raise ValueError("batch_size and concurrency must be positive")
        self.env = env
        self.platform = platform
        self.queue = queue
        self.function_name = function_name
        self.batch_size = batch_size
        self.concurrency = concurrency
        self.stats = TriggerStats()
        self._in_flight: list = []
        self._stopped = False
        self.process = env.process(self._poll_loop(), name="queue-poller")

    def stop(self) -> None:
        """Shut the poller down after the current poll."""
        self._stopped = True

    def _poll_loop(self):
        while not self._stopped:
            yield self.env.timeout(POLL_INTERVAL_S)
            batch = []
            while len(batch) < self.batch_size and self.queue.depth > 0:
                message = yield self.queue.receive()
                batch.append(message)
            self.stats.polled += len(batch)
            for message in batch:
                yield from self._admit_slot()
                process = self.env.process(
                    self._deliver(message), name="trigger-delivery")
                self._in_flight.append(process)

    def _admit_slot(self):
        while len([p for p in self._in_flight if p.is_alive]) \
                >= self.concurrency:
            live = [p for p in self._in_flight if p.is_alive]
            yield AnyOf(self.env, live)
        self._in_flight = [p for p in self._in_flight if p.is_alive]

    def _deliver(self, message):
        record: InvocationRecord = yield from self.platform.invoke_async(
            self.function_name, message["body"])
        if record.error is not None:
            self.stats.failed += 1
        else:
            self.stats.invoked += 1
        self.stats.delivery_latencies.append(
            record.started_at - message["sent_at"])
        return record
