"""Lambda concurrency scaling: burst pool plus linear ramp.

Documented behaviour [37]: an account can start up to 3,000 function
instances in an initial burst (region-dependent), after which Lambda adds
tenant slots at 500 per minute of sustained load, up to the account's
concurrency quota.
"""

from __future__ import annotations

from typing import Optional

#: Additional concurrency granted per minute of sustained load [37].
SCALE_RATE_PER_MINUTE = 500.0


class ConcurrencyScaler:
    """Tracks how many concurrent environments the account may run.

    The allowance starts at the regional burst limit and, while demand
    exceeds supply, grows linearly at 500/min toward the account quota.
    When load subsides below the burst limit, the ramp resets.
    """

    def __init__(self, burst_limit: int = 3_000,
                 account_quota: int = 1_000,
                 scale_rate_per_minute: float = SCALE_RATE_PER_MINUTE) -> None:
        if burst_limit <= 0 or account_quota <= 0:
            raise ValueError("limits must be positive")
        self.burst_limit = burst_limit
        self.account_quota = account_quota
        self.scale_rate = scale_rate_per_minute / 60.0
        self._ramp_started_at: Optional[float] = None

    def allowance(self, now: float) -> int:
        """Concurrent environments permitted at time ``now``."""
        base = min(self.burst_limit, self.account_quota)
        if self._ramp_started_at is None:
            return base
        ramped = base + self.scale_rate * (now - self._ramp_started_at)
        return int(min(ramped, self.account_quota))

    def note_demand(self, concurrent: int, now: float) -> None:
        """Report current demand so the ramp can start or reset."""
        if concurrent >= min(self.burst_limit, self.account_quota):
            if self._ramp_started_at is None:
                self._ramp_started_at = now
        else:
            self._ramp_started_at = None

    def admit(self, concurrent: int, now: float) -> bool:
        """Whether one more environment may start given current usage."""
        self.note_demand(concurrent, now)
        return concurrent < self.allowance(now)
