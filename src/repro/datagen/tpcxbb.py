"""TPCx-BB table generators (web clickstreams, item).

Covers what Q3 touches: a clickstream fact table (user, item, date,
optional sale) and the item dimension with category ids. Q3 is the
paper's "I/O-bound MapReduce job": sessionize clicks per user with a UDF
and count which items were viewed shortly before a purchase in a target
category.
"""

from __future__ import annotations

import numpy as np

from repro.datagen.dates import date_to_days
from repro.formats.batch import RecordBatch
from repro.formats.schema import DataType, Field, Schema

CLICKSTREAMS_SCHEMA = Schema([
    Field("wcs_click_date_sk", DataType.DATE),
    Field("wcs_click_time_sk", DataType.INT64),
    Field("wcs_user_sk", DataType.INT64),
    Field("wcs_item_sk", DataType.INT64),
    Field("wcs_sales_sk", DataType.INT64),  # 0 = view only, >0 = purchase
])

ITEM_SCHEMA = Schema([
    Field("i_item_sk", DataType.INT64),
    Field("i_category_id", DataType.INT64),
])

#: Clickstream date range (arbitrary but fixed).
CLICK_START = date_to_days(2001, 1, 1)
CLICK_END = date_to_days(2003, 12, 31)

#: Dimension cardinalities at SF1 (scaled linearly for users).
USERS_PER_SF = 100_000
ITEM_COUNT = 18_000
CATEGORY_COUNT = 10

#: Fraction of clicks that are purchases.
PURCHASE_FRACTION = 0.04


def generate_clickstreams(rows: int, seed: int,
                          scale_factor: float = 1.0) -> RecordBatch:
    """Generate ``rows`` click events (one partition's worth)."""
    rng = np.random.default_rng(seed)
    users = rng.integers(1, int(USERS_PER_SF * max(scale_factor, 1e-3)) + 1,
                         rows, dtype=np.int64)
    items = rng.integers(1, ITEM_COUNT + 1, rows, dtype=np.int64)
    dates = rng.integers(CLICK_START, CLICK_END, rows).astype(np.int32)
    times = rng.integers(0, 86_400, rows, dtype=np.int64)
    is_sale = rng.random(rows) < PURCHASE_FRACTION
    sales = np.where(is_sale,
                     rng.integers(1, 2**31, rows, dtype=np.int64), 0)
    return RecordBatch(CLICKSTREAMS_SCHEMA, {
        "wcs_click_date_sk": dates,
        "wcs_click_time_sk": times,
        "wcs_user_sk": users,
        "wcs_item_sk": items,
        "wcs_sales_sk": sales,
    })


def generate_item(rows: int = ITEM_COUNT, seed: int = 0,
                  scale_factor: float = 1.0) -> RecordBatch:
    """Generate the item dimension (single small partition)."""
    del scale_factor  # the dimension is fixed-size
    rng = np.random.default_rng(seed)
    item_sk = np.arange(1, rows + 1, dtype=np.int64)
    category = rng.integers(1, CATEGORY_COUNT + 1, rows, dtype=np.int64)
    return RecordBatch(ITEM_SCHEMA, {
        "i_item_sk": item_sk,
        "i_category_id": category,
    })
