"""TPC-H table generators (lineitem, orders).

Column subsets cover everything Q1, Q6, and Q12 touch, with value
distributions following the TPC-H specification's shapes: uniform order
dates over 1992-1998, ship/commit/receipt offsets, price-from-quantity,
and the returnflag/linestatus rules relative to the 1995-06-17 pivot.
"""

from __future__ import annotations

import numpy as np

from repro.datagen.dates import TPCH_CURRENT, TPCH_END, TPCH_START
from repro.formats.batch import RecordBatch
from repro.formats.schema import DataType, Field, Schema

LINEITEM_SCHEMA = Schema([
    Field("l_orderkey", DataType.INT64),
    Field("l_quantity", DataType.FLOAT64),
    Field("l_extendedprice", DataType.FLOAT64),
    Field("l_discount", DataType.FLOAT64),
    Field("l_tax", DataType.FLOAT64),
    Field("l_returnflag", DataType.STRING),
    Field("l_linestatus", DataType.STRING),
    Field("l_shipdate", DataType.DATE),
    Field("l_commitdate", DataType.DATE),
    Field("l_receiptdate", DataType.DATE),
    Field("l_shipmode", DataType.STRING),
])

ORDERS_SCHEMA = Schema([
    Field("o_orderkey", DataType.INT64),
    Field("o_custkey", DataType.INT64),
    Field("o_orderdate", DataType.DATE),
    Field("o_orderpriority", DataType.STRING),
    Field("o_totalprice", DataType.FLOAT64),
])

SHIP_MODES = np.array(["REG AIR", "AIR", "RAIL", "SHIP", "TRUCK", "MAIL",
                       "FOB"], dtype=object)
ORDER_PRIORITIES = np.array(["1-URGENT", "2-HIGH", "3-MEDIUM",
                             "4-NOT SPECIFIED", "5-LOW"], dtype=object)

#: Orders per TPC-H scale factor (1.5M orders / SF).
ORDERS_PER_SF = 1_500_000
#: Average lineitems per order (1..7 uniform).
LINEITEMS_PER_ORDER = 4.0


def max_orderkey(scale_factor: float) -> int:
    """Largest order key in a dataset of the given scale factor."""
    return max(1, int(ORDERS_PER_SF * scale_factor))


def generate_lineitem(rows: int, seed: int,
                      scale_factor: float = 1.0) -> RecordBatch:
    """Generate ``rows`` lineitem rows (one partition's worth)."""
    rng = np.random.default_rng(seed)
    orderkey = rng.integers(1, max_orderkey(scale_factor) + 1, rows,
                            dtype=np.int64)
    quantity = rng.integers(1, 51, rows).astype(np.float64)
    # extendedprice = quantity * part retail price (~900..100k).
    unit_price = 900.0 + rng.random(rows) * 1100.0
    extendedprice = np.round(quantity * unit_price, 2)
    discount = np.round(rng.integers(0, 11, rows) / 100.0, 2)
    tax = np.round(rng.integers(0, 9, rows) / 100.0, 2)
    orderdate = rng.integers(TPCH_START, TPCH_END - 151, rows)
    shipdate = (orderdate + rng.integers(1, 122, rows)).astype(np.int32)
    commitdate = (orderdate + rng.integers(30, 91, rows)).astype(np.int32)
    receiptdate = (shipdate + rng.integers(1, 31, rows)).astype(np.int32)
    linestatus = np.where(shipdate <= TPCH_CURRENT, "F", "O").astype(object)
    returned = rng.random(rows) < 0.5
    returnflag = np.where(
        receiptdate <= TPCH_CURRENT,
        np.where(returned, "R", "A"), "N").astype(object)
    shipmode = SHIP_MODES[rng.integers(0, len(SHIP_MODES), rows)]
    return RecordBatch(LINEITEM_SCHEMA, {
        "l_orderkey": orderkey,
        "l_quantity": quantity,
        "l_extendedprice": extendedprice,
        "l_discount": discount,
        "l_tax": tax,
        "l_returnflag": returnflag,
        "l_linestatus": linestatus,
        "l_shipdate": shipdate,
        "l_commitdate": commitdate,
        "l_receiptdate": receiptdate,
        "l_shipmode": shipmode,
    })


def generate_orders(rows: int, seed: int, scale_factor: float = 1.0,
                    first_orderkey: int = 1) -> RecordBatch:
    """Generate ``rows`` orders with consecutive keys from
    ``first_orderkey`` (partitions own disjoint key ranges)."""
    rng = np.random.default_rng(seed)
    orderkey = np.arange(first_orderkey, first_orderkey + rows,
                         dtype=np.int64)
    custkey = rng.integers(1, int(150_000 * max(scale_factor, 1e-3)) + 1,
                           rows, dtype=np.int64)
    orderdate = rng.integers(TPCH_START, TPCH_END - 151, rows).astype(np.int32)
    priority = ORDER_PRIORITIES[rng.integers(0, len(ORDER_PRIORITIES), rows)]
    totalprice = np.round(rng.random(rows) * 450_000.0 + 850.0, 2)
    return RecordBatch(ORDERS_SCHEMA, {
        "o_orderkey": orderkey,
        "o_custkey": custkey,
        "o_orderdate": orderdate,
        "o_orderpriority": priority,
        "o_totalprice": totalprice,
    })
