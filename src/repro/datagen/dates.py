"""Date helpers: TPC dates as int32 days since 1970-01-01."""

from __future__ import annotations

import datetime

EPOCH = datetime.date(1970, 1, 1)


def date_to_days(year: int, month: int, day: int) -> int:
    """Calendar date -> days since epoch."""
    return (datetime.date(year, month, day) - EPOCH).days


def days_to_date(days: int) -> datetime.date:
    """Days since epoch -> calendar date."""
    return EPOCH + datetime.timedelta(days=int(days))


#: TPC-H date range: orders span 1992-01-01 .. 1998-08-02.
TPCH_START = date_to_days(1992, 1, 1)
TPCH_END = date_to_days(1998, 8, 2)

#: TPC-H "current date" used for returnflag/linestatus semantics.
TPCH_CURRENT = date_to_days(1995, 6, 17)
