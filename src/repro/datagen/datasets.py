"""Dataset specifications, partitioning, and loading onto storage.

Encodes Table 4 of the paper — the SF1000 datasets with their partition
counts and sizes — and provides :func:`load_table`, which generates each
partition, encodes it in the columnar format, and stores it with the
*logical* partition size (what simulated I/O and pricing see) while
keeping the physical rows small.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Callable, Optional

from repro import units
from repro.datagen import tpch, tpcxbb
from repro.formats.batch import RecordBatch
from repro.formats.columnar import write_file
from repro.formats.schema import Schema
from repro.storage.base import StorageService


@dataclass(frozen=True)
class DatasetSpec:
    """A table at a given (logical) scale."""

    name: str
    schema: Schema
    #: Logical total size of the compressed dataset (Table 4).
    total_logical_bytes: float
    #: Number of partition files.
    partition_count: int
    #: Physically materialized rows across all partitions.
    physical_rows: int
    #: generator(rows, seed, partition_index, physical_sf) -> RecordBatch
    generator: Callable[[int, int, int, float], RecordBatch]
    scale_factor: float = 1000.0

    @property
    def physical_scale_factor(self) -> float:
        """Scale factor implied by the *physical* row count.

        Key domains (order keys, user keys) are sized to this factor, so
        shrunken tables stay join-compatible: a lineitem table with N
        physical rows draws order keys from the key range an orders table
        of matching physical scale actually holds.
        """
        nominal = NOMINAL_ROWS_PER_SF.get(self.name)
        if nominal is None:
            return self.scale_factor
        return max(self.physical_rows / nominal, 1e-6)

    @property
    def partition_logical_bytes(self) -> float:
        """Mean logical size of one partition file."""
        return self.total_logical_bytes / self.partition_count

    def rows_for_partition(self, index: int) -> int:
        """Physical rows assigned to partition ``index``."""
        base = self.physical_rows // self.partition_count
        remainder = self.physical_rows % self.partition_count
        return base + (1 if index < remainder else 0)


@dataclass
class PartitionInfo:
    """One stored partition file of a table."""

    key: str
    logical_bytes: float
    physical_bytes: int
    rows: int


@dataclass
class TableMetadata:
    """Catalog entry: where a table's partitions live and how big they are."""

    name: str
    schema: Schema
    partitions: list[PartitionInfo] = field(default_factory=list)
    service_name: str = "s3-standard"

    @property
    def total_logical_bytes(self) -> float:
        """Sum of logical partition sizes."""
        return sum(p.logical_bytes for p in self.partitions)

    @property
    def total_rows(self) -> int:
        """Sum of physical row counts."""
        return sum(p.rows for p in self.partitions)

    @property
    def partition_count(self) -> int:
        """Number of partition files."""
        return len(self.partitions)


#: Physical rows one TPC scale-factor unit implies, per table. Used to
#: derive consistent key domains at any physical scale.
NOMINAL_ROWS_PER_SF: dict[str, float] = {
    "lineitem": 6_000_000.0,
    "orders": 1_500_000.0,
    "clickstreams": 1_000_000.0,
}


def _lineitem_generator(rows: int, seed: int, index: int,
                        physical_sf: float) -> RecordBatch:
    return tpch.generate_lineitem(rows, seed=seed + index,
                                  scale_factor=physical_sf)


def _orders_generator(rows: int, seed: int, index: int,
                      physical_sf: float) -> RecordBatch:
    del physical_sf  # orders own their consecutive key range directly
    first = index * rows + 1
    return tpch.generate_orders(rows, seed=seed + index,
                                first_orderkey=first)


def _clickstreams_generator(rows: int, seed: int, index: int,
                            physical_sf: float) -> RecordBatch:
    return tpcxbb.generate_clickstreams(rows, seed=seed + index,
                                        scale_factor=physical_sf)


def _item_generator(rows: int, seed: int, index: int,
                    physical_sf: float) -> RecordBatch:
    del physical_sf
    return tpcxbb.generate_item(rows, seed=seed)


#: Table 4: datasets used in the experiments (SF1000, ZSTD Parquet sizes).
TPCH_SF1000: dict[str, DatasetSpec] = {
    "lineitem": DatasetSpec(
        name="lineitem", schema=tpch.LINEITEM_SCHEMA,
        total_logical_bytes=177.4 * units.GiB, partition_count=996,
        physical_rows=996 * 64, generator=_lineitem_generator),
    "orders": DatasetSpec(
        name="orders", schema=tpch.ORDERS_SCHEMA,
        total_logical_bytes=44.9 * units.GiB, partition_count=249,
        physical_rows=249 * 64, generator=_orders_generator),
    "clickstreams": DatasetSpec(
        name="clickstreams", schema=tpcxbb.CLICKSTREAMS_SCHEMA,
        total_logical_bytes=94.9 * units.GiB, partition_count=1_000,
        physical_rows=1_000 * 64, generator=_clickstreams_generator),
    "item": DatasetSpec(
        name="item", schema=tpcxbb.ITEM_SCHEMA,
        total_logical_bytes=75.8 * units.MiB, partition_count=1,
        physical_rows=tpcxbb.ITEM_COUNT, generator=_item_generator),
}


def scaled_spec(name: str, partitions: int, rows_per_partition: int = 256,
               ) -> DatasetSpec:
    """A shrunken spec for tests: fewer partitions, same logical density.

    Partition logical sizes stay at the SF1000 per-partition values so
    per-worker behaviour (burst budgets, request counts per partition)
    matches the paper even when the partition count is reduced.
    """
    base = TPCH_SF1000[name]
    partitions = min(partitions, base.partition_count)
    physical_rows = rows_per_partition * partitions
    if name == "item":
        # The item dimension is fixed-size: shrinking it would leave the
        # clickstream's item references dangling and starve category
        # lookups, so it always materializes fully.
        physical_rows = base.physical_rows
    return DatasetSpec(
        name=base.name, schema=base.schema,
        total_logical_bytes=base.partition_logical_bytes * partitions,
        partition_count=partitions,
        physical_rows=physical_rows,
        generator=base.generator)


def load_table(env, storage: StorageService, spec: DatasetSpec,
               key_prefix: Optional[str] = None, seed: int = 1_000):
    """Process: generate and store every partition of ``spec``.

    Returns a :class:`TableMetadata` whose partitions carry the logical
    SF1000 byte sizes. Loading bypasses request metering concerns by
    writing directly (dataset preparation is not part of any measured
    experiment).
    """
    prefix = key_prefix if key_prefix is not None else f"tables/{spec.name}"
    metadata = TableMetadata(name=spec.name, schema=spec.schema,
                             service_name=storage.name)
    for index in range(spec.partition_count):
        rows = spec.rows_for_partition(index)
        batch = spec.generator(rows, seed, index,
                               spec.physical_scale_factor)
        payload = write_file(batch)
        key = f"{prefix}/part-{index:05d}"
        obj = yield from storage.put(
            key, payload, size=spec.partition_logical_bytes)
        metadata.partitions.append(PartitionInfo(
            key=obj.key, logical_bytes=spec.partition_logical_bytes,
            physical_bytes=len(payload), rows=rows))
    return metadata
