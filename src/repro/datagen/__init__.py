"""Deterministic TPC-H and TPCx-BB data generation.

Generates the tables the paper's query suite touches (Table 4): TPC-H
``lineitem`` and ``orders``, TPCx-BB ``clickstreams`` and ``item``. Data
is generated per partition from a seeded stream, so any partition can be
produced independently and reproducibly.

The *logical scale knob*: partition files carry the byte sizes of the
paper's SF1000 datasets (what simulated I/O and cost are computed from)
while the physically materialized rows stay laptop-sized (what query
results are computed from and validated against a reference executor).
"""

from repro.datagen.tpch import (
    LINEITEM_SCHEMA,
    ORDERS_SCHEMA,
    generate_lineitem,
    generate_orders,
)
from repro.datagen.tpcxbb import (
    CLICKSTREAMS_SCHEMA,
    ITEM_SCHEMA,
    generate_clickstreams,
    generate_item,
)
from repro.datagen.datasets import (
    DatasetSpec,
    PartitionInfo,
    TableMetadata,
    load_table,
    TPCH_SF1000,
    scaled_spec,
)

__all__ = [
    "CLICKSTREAMS_SCHEMA",
    "DatasetSpec",
    "ITEM_SCHEMA",
    "LINEITEM_SCHEMA",
    "ORDERS_SCHEMA",
    "PartitionInfo",
    "TPCH_SF1000",
    "TableMetadata",
    "generate_clickstreams",
    "generate_item",
    "generate_lineitem",
    "generate_orders",
    "load_table",
    "scaled_spec",
]
