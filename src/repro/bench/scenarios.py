"""The perf macro-scenarios: what `repro bench` measures.

Four workloads cover the simulator's hot paths end to end:

* ``serving`` — the :mod:`examples/multi_tenant_serving` workload: the
  3-tenant Poisson mix at 6x overload, run under FIFO and weighted fair
  share over the same trace. Dominated by kernel event dispatch, the
  fabric's per-flow rate updates, and repeated columnar reads of the
  same partitions (every query re-scans the same tables).
* ``q6-burst`` — TPC-H Q6 fanned out to 900 single-partition workers
  (the paper's Sec. 5 scale direction). Dominated by fabric rate
  recomputation across hundreds of concurrent flows and per-fragment
  plan/scan overheads.
* ``chaos-q12`` — the shuffle-heavy Q12 under the ``demo-outage`` fault
  plan with recovery on. Exercises retries/hedges, shuffle slice reads,
  and the aggregate operators.
* ``futures-mapreduce`` — the futures wordcount over a byte-range
  partitioned S3 prefix. Exercises the futures executor/invoker fan-out,
  ranged storage reads, and per-future cost accounting.
* ``sharded-serving`` — a Zipf trace over a million distinct tenants
  replayed through the sharded serving fabric (router, epoch-fenced
  rebalancing, one injected shard failure). Its ``full_scans`` check
  pins the per-event cost to O(1) in tenant count: the replay counts
  every full iteration over a tenant-keyed dict and the committed
  value is zero.

Every scenario returns a dict of *deterministic* check values (query
counts, simulated runtimes, costs, scheduled-event counts). They must be
bit-identical run to run and across perf refactors — the bench harness
and the CI smoke gate fail on any drift, so a "speedup" can never come
from quietly simulating less.
"""

from __future__ import annotations

import hashlib
from dataclasses import dataclass
from typing import Callable


@dataclass(frozen=True)
class Scenario:
    """One macro-benchmark: an untimed setup and a timed body."""

    name: str
    description: str
    #: ``build(smoke)`` does untimed setup and returns the timed body;
    #: the body returns the deterministic check dict.
    build: Callable[[bool], Callable[[], dict]]


def _digest(text: str) -> str:
    """Short stable fingerprint of a canonical-JSON artifact."""
    return hashlib.sha256(text.encode("utf-8")).hexdigest()[:16]


# -- serving ------------------------------------------------------------------

def _build_serving(smoke: bool) -> Callable[[], dict]:
    from repro.serve import default_tenant_mix, run_serving_workload

    window_s = 120.0 if smoke else 600.0

    def body() -> dict:
        checks: dict = {}
        for policy in ("fifo", "fair"):
            outcome = run_serving_workload(
                default_tenant_mix(rate_scale=6.0), policy=policy,
                window_s=window_s, seed=1, max_concurrent_queries=1)
            checks[f"{policy}_completed"] = outcome.total_completed
            checks[f"{policy}_shed"] = outcome.total_shed
            checks[f"{policy}_cost_usd"] = round(outcome.total_cost_usd, 9)
            checks[f"{policy}_digest"] = _digest(outcome.to_json())
        return checks

    return body


# -- q6 burst -----------------------------------------------------------------

def _build_q6_burst(smoke: bool) -> Callable[[], dict]:
    from repro.core import CloudSim
    from repro.datagen import load_table, scaled_spec
    from repro.engine import SkyriseEngine
    from repro.engine.queries import tpch_q6

    workers = 64 if smoke else 900
    sim = CloudSim(seed=14)
    s3 = sim.s3()
    spec = scaled_spec("lineitem", workers, rows_per_partition=16)
    metadata = sim.run(load_table(sim.env, s3, spec))
    engine = SkyriseEngine(sim.env, sim.platform, storage={"s3-standard": s3})
    engine.register_table(metadata)
    engine.deploy()

    def body() -> dict:
        events_before = sim.env.scheduled_events
        result = sim.run(engine.run_query(tpch_q6(scan_fragments=workers)))
        return {
            "workers": workers,
            "runtime_s": round(result.runtime, 9),
            "rows": len(result.batch),
            "requests": result.requests,
            "cost_cents": round(result.cost_cents, 9),
            "events": sim.env.scheduled_events - events_before,
        }

    return body


# -- chaos q12 ----------------------------------------------------------------

def _build_chaos_q12(smoke: bool) -> Callable[[], dict]:
    from repro.chaos.runner import run_chaos_suite
    from repro.workloads.suite import SuiteSetup

    repeats = 2 if smoke else 6
    setup = SuiteSetup(lineitem_partitions=12, orders_partitions=6,
                       rows_per_partition=96, queries=("tpch-q12",))
    plan_kwargs = {"lineitem_fragments": 12, "orders_fragments": 6,
                   "join_fragments": 8}

    def body() -> dict:
        report = run_chaos_suite(
            "demo-outage", queries=("tpch-q12",), repeats=repeats, seed=0,
            plan_kwargs=plan_kwargs, setup=setup)
        return {
            "repeats": repeats,
            "goodput": round(report.goodput, 9),
            "unrecovered": report.unrecovered,
            "digest": _digest(report.to_json()),
        }

    return body


# -- futures map-reduce --------------------------------------------------------

def _build_futures_mapreduce(smoke: bool) -> Callable[[], dict]:
    from repro.futures.workloads import run_wordcount

    objects = 16 if smoke else 64
    chunks_per_object = 4 if smoke else 8

    def body() -> dict:
        outcome = run_wordcount(seed=7, objects=objects,
                                chunks_per_object=chunks_per_object)
        return {
            "chunks": outcome["chunks"],
            "records": outcome["records"],
            "runtime_s": outcome["runtime_s"],
            "total_cost_usd": outcome["total_cost_usd"],
            "cost_check": outcome["cost_check"],
            "digest": outcome["digest"],
        }

    return body


# -- sharded serving -----------------------------------------------------------

def _sharded_serving_config(smoke: bool):
    from repro.shard import ReplayConfig

    config = ReplayConfig(fail_at=(150.0,), fault_plan="shard-failure")
    if smoke:
        config = config.smoke()
    return config


def _sharded_serving_checks(result) -> dict:
    report = result.report
    return {
        "distinct_tenants": result.distinct_tenants,
        "completed": report["completed"],
        "shed": report["shed"],
        "recovered": report["recovered"],
        "balanced": report["balanced"],
        "full_scans": result.full_scans,
        "failures": result.failures_injected,
        "shards_final": result.shards_final,
        "digest": result.digest()[:16],
    }


def _build_sharded_serving(smoke: bool) -> Callable[[], dict]:
    from repro.shard import run_replay

    config = _sharded_serving_config(smoke)

    def body() -> dict:
        return _sharded_serving_checks(run_replay(config))

    return body


def _build_sharded_serving_parallel(smoke: bool) -> Callable[[], dict]:
    """The same replay through the shard-parallel kernel.

    Check fields (the digest included) are identical to
    ``sharded-serving`` by construction — the committed baseline pins
    that equality, so the parallel speedup can never come from
    simulating something else. ``workers=0`` runs the partitioned
    kernel in-process: the honest configuration on a single-core CI
    host, and the one whose speedup is the batched engine itself
    rather than parallelism the host cannot provide.
    """
    from repro.shard import run_parallel_replay

    config = _sharded_serving_config(smoke)

    def body() -> dict:
        return _sharded_serving_checks(
            run_parallel_replay(config, workers=0))

    return body


SCENARIOS: dict[str, Scenario] = {
    "serving": Scenario(
        name="serving",
        description="multi-tenant serving window (fifo + fair, 6x overload)",
        build=_build_serving),
    "q6-burst": Scenario(
        name="q6-burst",
        description="TPC-H Q6 burst scan at 900 single-partition workers",
        build=_build_q6_burst),
    "chaos-q12": Scenario(
        name="chaos-q12",
        description="shuffle-heavy Q12 under the demo-outage fault plan",
        build=_build_chaos_q12),
    "futures-mapreduce": Scenario(
        name="futures-mapreduce",
        description="futures map-reduce wordcount over a partitioned "
                    "S3 prefix",
        build=_build_futures_mapreduce),
    "sharded-serving": Scenario(
        name="sharded-serving",
        description="million-tenant Zipf replay over the sharded "
                    "serving fabric (rebalance + shard failure)",
        build=_build_sharded_serving),
    "sharded-serving-parallel": Scenario(
        name="sharded-serving-parallel",
        description="the same replay through the shard-parallel "
                    "kernel; checks (digest included) must equal "
                    "sharded-serving",
        build=_build_sharded_serving_parallel),
}
