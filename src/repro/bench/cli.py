"""`repro bench` — run the perf macro-scenarios and gate against baseline.

Usage::

    repro bench                         # measure all scenarios (full size)
    repro bench --smoke                 # small variants + CI gate
    repro bench --scenario serving      # one scenario only
    repro bench --record before         # write results into BENCH_PR10.json
    repro bench --record after --smoke  # and the smoke slot
    repro bench --compare A.json B.json # speedup table for two recordings

Without ``--record``, measurements are printed and (in ``--smoke``)
compared against the committed baseline: deterministic checks must match
exactly and the serving wall-clock (spin-normalized) must stay within
the regression factor. With ``--record``, measurements are merged into
the baseline file instead and the gate is skipped. ``--compare`` runs
nothing: it prints a spin-normalized speedup table between any two
committed recordings and exits (non-zero if any compared entry's
deterministic checks drifted between the two files).
"""

from __future__ import annotations

import sys
from pathlib import Path

DEFAULT_BASELINE = Path("benchmarks/perf/BENCH_PR10.json")


def add_bench_arguments(parser) -> None:
    """Attach `repro bench` arguments to an argparse subparser."""
    from repro.bench.harness import SLOTS

    parser.add_argument("--smoke", action="store_true",
                        help="small scenario variants; gate against the "
                             "committed baseline (CI mode)")
    parser.add_argument("--scenario", action="append", default=None,
                        metavar="NAME",
                        help="measure only this scenario (repeatable)")
    parser.add_argument("--record", choices=SLOTS, default=None,
                        help="write results into the baseline file under "
                             "this slot instead of gating")
    parser.add_argument("--file", type=Path, default=DEFAULT_BASELINE,
                        help=f"baseline JSON path "
                             f"(default: {DEFAULT_BASELINE})")
    parser.add_argument("--no-calls", action="store_true",
                        help="skip the cProfile call-count pass (faster)")
    parser.add_argument("--compare", nargs=2, type=Path, default=None,
                        metavar=("BEFORE", "AFTER"),
                        help="print a speedup table between two recorded "
                             "baseline files and exit (runs nothing)")


def run_bench(args) -> int:
    """Entry point for the `bench` subcommand; returns an exit code."""
    from repro.bench.harness import (
        format_comparison,
        format_results,
        gate,
        load_baseline,
        record,
        run_scenarios,
        save_baseline,
    )
    from repro.bench.scenarios import SCENARIOS

    if args.compare is not None:
        before_path, after_path = args.compare
        for path in (before_path, after_path):
            if not path.exists():
                print(f"repro bench --compare: no such file: {path}",
                      file=sys.stderr)
                return 2
        table = format_comparison(
            load_baseline(before_path), load_baseline(after_path),
            before_name=before_path.stem, after_name=after_path.stem)
        print(table)
        return 1 if "DRIFTED" in table else 0

    names = args.scenario or sorted(SCENARIOS)
    unknown = [name for name in names if name not in SCENARIOS]
    if unknown:
        print(f"repro bench: unknown scenario(s) {unknown}; "
              f"choose from {sorted(SCENARIOS)}", file=sys.stderr)
        return 2

    baseline = load_baseline(args.file)
    try:
        results = run_scenarios(names, smoke=args.smoke,
                                count_calls=not args.no_calls)
    except RuntimeError as exc:
        print(f"repro bench: error: {exc}", file=sys.stderr)
        return 1
    print(format_results(results, baseline, smoke=args.smoke))

    if args.record:
        record(baseline, results, args.record, smoke=args.smoke)
        save_baseline(baseline, args.file)
        mode = "smoke" if args.smoke else "full"
        print(f"recorded {mode}/{args.record} for {', '.join(names)} "
              f"-> {args.file}")
        return 0

    if args.smoke:
        failures = gate(results, baseline, smoke=True)
        if failures:
            for failure in failures:
                print(f"repro bench --smoke: FAIL: {failure}",
                      file=sys.stderr)
            return 1
        print("smoke OK: deterministic checks match baseline, "
              "no wall-clock regression")
    return 0
