"""Performance-benchmark harness (`repro bench`).

Macro-scenarios over the simulator's hot paths, measured for wall-clock
and Python call counts, with deterministic check values that pin the
simulated outcomes. ``benchmarks/perf/BENCH_PR5.json`` holds the
committed before/after numbers; the CI ``bench-smoke`` job re-measures
the smoke variants and fails on outcome drift or a >25% wall-clock
regression on the serving scenario. See ``docs/performance.md``.
"""

from repro.bench.harness import (
    REGRESSION_FACTOR,
    format_results,
    gate,
    load_baseline,
    measure,
    normalized_wall,
    record,
    run_scenarios,
    save_baseline,
    spin_score,
)
from repro.bench.scenarios import SCENARIOS, Scenario

__all__ = [
    "REGRESSION_FACTOR",
    "SCENARIOS",
    "Scenario",
    "format_results",
    "gate",
    "load_baseline",
    "measure",
    "normalized_wall",
    "record",
    "run_scenarios",
    "save_baseline",
    "spin_score",
]
