"""Measurement harness behind `repro bench`.

Measures each macro-scenario's wall-clock time (the *only* quantity the
perf PRs are allowed to change), a deterministic check dict (which must
never change), and — optionally — the total Python call count under
cProfile, the metric the hot-path inventory in ``docs/performance.md``
is written against.

Wall-clock comparisons across machines are normalized by a spin
calibration score (a fixed pure-Python loop timed on the same host), so
the CI smoke gate compares ``wall / spin`` ratios rather than raw
seconds. Deterministic checks are compared exactly.

This module is the one place in ``src/`` allowed to read the host
clock: it measures the simulator from the outside.
"""

from __future__ import annotations

import cProfile
import sys
import time
from pathlib import Path
from typing import Optional

from repro.bench.scenarios import SCENARIOS, Scenario
from repro.telemetry import canonical_json

#: Slot names a measurement can be recorded under in the baseline file.
SLOTS = ("before", "after")

#: The CI gate: smoke serving wall (spin-normalized) may exceed the
#: committed baseline by at most this factor.
REGRESSION_FACTOR = 1.25

#: Scenarios whose wall-clock is gated in --smoke (the others gate on
#: deterministic checks only; their smoke workloads are too short for a
#: stable wall measurement in shared CI runners).
WALL_GATED = ("serving",)

_SPIN_ITERATIONS = 2_000_000


def spin_score() -> float:
    """Seconds for a fixed pure-Python loop: a machine-speed yardstick."""
    best = float("inf")
    for _ in range(3):
        started = time.perf_counter()  # repro-lint: disable=DET001 bench harness measures the simulator from outside
        acc = 0
        for i in range(_SPIN_ITERATIONS):
            acc += i & 7
        elapsed = time.perf_counter() - started  # repro-lint: disable=DET001 bench harness measures the simulator from outside
        best = min(best, elapsed)
    return best


def measure(scenario: Scenario, smoke: bool = False,
            count_calls: bool = True) -> dict:
    """Run one scenario; return its measurement entry.

    The timed body runs once for wall-clock, and (optionally) a second
    time under cProfile for the call count. Both runs are freshly set
    up and deterministic, so their check dicts must agree — a mismatch
    means the scenario itself is nondeterministic and is reported as a
    hard error.
    """
    body = scenario.build(smoke)
    started = time.perf_counter()  # repro-lint: disable=DET001 bench harness measures the simulator from outside
    checks = body()
    wall_s = time.perf_counter() - started  # repro-lint: disable=DET001 bench harness measures the simulator from outside
    entry = {
        "wall_s": round(wall_s, 6),
        "spin_s": round(spin_score(), 6),
        "checks": checks,
    }
    if count_calls:
        profile = cProfile.Profile()
        body = scenario.build(smoke)
        profile.enable()
        profiled_checks = body()
        profile.disable()
        if profiled_checks != checks:
            raise RuntimeError(
                f"scenario {scenario.name!r} is nondeterministic: "
                f"profiled run produced different checks")
        entry["calls"] = sum(stat.callcount
                             for stat in profile.getstats())
    return entry


def run_scenarios(names: Optional[list[str]] = None, smoke: bool = False,
                  count_calls: bool = True) -> dict:
    """Measure the named scenarios (default: all); return name → entry."""
    results = {}
    for name in names or sorted(SCENARIOS):
        results[name] = measure(SCENARIOS[name], smoke=smoke,
                                count_calls=count_calls)
    return results


# -- baseline file ------------------------------------------------------------

def load_baseline(path: Path) -> dict:
    """Parse the committed BENCH_*.json, or an empty skeleton."""
    import json
    if not path.exists():
        return {"schema": 1, "scenarios": {}}
    return json.loads(path.read_text())


def record(baseline: dict, results: dict, slot: str, smoke: bool) -> dict:
    """Merge measured ``results`` into ``baseline`` under ``slot``."""
    if slot not in SLOTS:
        raise ValueError(f"slot must be one of {SLOTS}, got {slot!r}")
    mode = "smoke" if smoke else "full"
    scenarios = baseline.setdefault("scenarios", {})
    for name, entry in results.items():
        scenarios.setdefault(name, {}).setdefault(mode, {})[slot] = entry
    baseline["python"] = sys.version.split()[0]
    return baseline


def save_baseline(baseline: dict, path: Path) -> None:
    path.write_text(canonical_json(baseline) + "\n")


# -- the CI smoke gate --------------------------------------------------------

def normalized_wall(entry: dict) -> float:
    """Machine-speed-normalized wall clock (wall / spin)."""
    spin = entry.get("spin_s") or 1.0
    return entry["wall_s"] / spin


def gate(results: dict, baseline: dict, smoke: bool = True) -> list[str]:
    """Compare measured smoke results against the committed baseline.

    Returns a list of failure messages (empty = gate passes). Two
    checks per scenario:

    * deterministic check values must match the committed ``after``
      entry exactly — a drift means the optimization changed a
      simulated outcome;
    * for :data:`WALL_GATED` scenarios, the spin-normalized wall clock
      must not exceed the committed ``after`` value by more than
      :data:`REGRESSION_FACTOR`.
    """
    mode = "smoke" if smoke else "full"
    failures = []
    for name, entry in results.items():
        committed = (baseline.get("scenarios", {}).get(name, {})
                     .get(mode, {}).get("after"))
        if committed is None:
            failures.append(f"{name}: no committed {mode}/after baseline")
            continue
        if entry["checks"] != committed["checks"]:
            failures.append(
                f"{name}: deterministic checks drifted from baseline "
                f"(got {entry['checks']}, committed {committed['checks']})")
        if name in WALL_GATED:
            measured = normalized_wall(entry)
            allowed = normalized_wall(committed) * REGRESSION_FACTOR
            if measured > allowed:
                failures.append(
                    f"{name}: wall-clock regression — normalized "
                    f"{measured:.3f} exceeds baseline "
                    f"{normalized_wall(committed):.3f} "
                    f"x{REGRESSION_FACTOR}")
    return failures


def format_comparison(before: dict, after: dict,
                      before_name: str = "before",
                      after_name: str = "after") -> str:
    """Speedup table between any two recordings (``--compare``).

    Walks every scenario/mode/slot present in *both* baselines and
    compares spin-normalized wall clocks (so recordings from different
    machines compare meaningfully); flags any deterministic-check
    drift, since a speedup over different checks is not a speedup.
    """
    lines = [f"{'scenario':<26} {'mode':<6} {'slot':<7} "
             f"{before_name:>10} {after_name:>10} {'speedup':>8}  checks"]
    a_scenarios = before.get("scenarios", {})
    b_scenarios = after.get("scenarios", {})
    for name in sorted(set(a_scenarios) & set(b_scenarios)):
        for mode in ("full", "smoke"):
            slots_a = a_scenarios[name].get(mode, {})
            slots_b = b_scenarios[name].get(mode, {})
            for slot in SLOTS:
                entry_a, entry_b = slots_a.get(slot), slots_b.get(slot)
                if entry_a is None or entry_b is None:
                    continue
                ratio = (normalized_wall(entry_a)
                         / max(normalized_wall(entry_b), 1e-12))
                drift = ("ok" if entry_a["checks"] == entry_b["checks"]
                         else "DRIFTED")
                lines.append(
                    f"{name:<26} {mode:<6} {slot:<7} "
                    f"{entry_a['wall_s']:>9.3f}s {entry_b['wall_s']:>9.3f}s "
                    f"{ratio:>7.2f}x  {drift}")
    if len(lines) == 1:
        lines.append("(no scenario/mode/slot present in both files)")
    return "\n".join(lines)


def format_results(results: dict, baseline: Optional[dict] = None,
                   smoke: bool = False) -> str:
    """Human-readable result table, with speedup vs 'before' if known."""
    mode = "smoke" if smoke else "full"
    lines = [f"{'scenario':<12} {'wall_s':>9} {'calls':>10} "
             f"{'vs before':>10}  checks"]
    for name, entry in sorted(results.items()):
        speedup = ""
        if baseline is not None:
            before = (baseline.get("scenarios", {}).get(name, {})
                      .get(mode, {}).get("before"))
            if before:
                ratio = (normalized_wall(before)
                         / max(normalized_wall(entry), 1e-12))
                speedup = f"{ratio:.2f}x"
        calls = entry.get("calls")
        check_text = ", ".join(
            f"{key}={value}" for key, value in sorted(
                entry["checks"].items())
            if not key.endswith("digest"))
        lines.append(
            f"{name:<12} {entry['wall_s']:>9.3f} "
            f"{calls if calls is not None else '-':>10} "
            f"{speedup:>10}  {check_text}")
    return "\n".join(lines)
