"""Throughput probes: fixed-interval samplers of flow progress.

The paper plots network throughput at 20 ms intervals (Figures 5 and 7).
A probe wakes every ``interval`` seconds, syncs the fabric, and records the
bytes moved since the previous sample, either for a single flow or for the
sum over a set of flows.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Callable, Iterable, Optional

from repro.network.fabric import Fabric, Flow
from repro.sim import Environment, Interrupt


@dataclass
class ProbeSample:
    """One throughput sample."""

    time: float
    bytes: float

    @property
    def rate(self) -> float:
        """This sample's byte count as an instantaneous value."""
        return self.bytes


@dataclass
class ProbeSeries:
    """The full time series a probe collected."""

    interval: float
    samples: list[ProbeSample] = field(default_factory=list)

    def rates(self) -> list[float]:
        """Per-interval throughput in bytes/second."""
        return [sample.bytes / self.interval for sample in self.samples]

    def times(self) -> list[float]:
        """Sample timestamps (end of each interval)."""
        return [sample.time for sample in self.samples]

    def total_bytes(self) -> float:
        """Sum of bytes over all samples."""
        return sum(sample.bytes for sample in self.samples)

    def peak_rate(self) -> float:
        """Maximum per-interval rate observed."""
        rates = self.rates()
        return max(rates) if rates else 0.0


class ThroughputProbe:
    """Samples aggregate progress of a set of flows at a fixed interval.

    The flow set is late-bound via a callable so that probes can observe
    flows created after the probe started (e.g. repeated bursts).
    """

    def __init__(self, env: Environment, fabric: Fabric,
                 flows: Callable[[], Iterable[Flow]] | Iterable[Flow],
                 interval: float = 0.02,
                 duration: Optional[float] = None) -> None:
        if interval <= 0:
            raise ValueError(f"interval must be positive, got {interval}")
        self.env = env
        self.fabric = fabric
        if callable(flows):
            self._flow_source = flows
        else:
            frozen = list(flows)
            self._flow_source = lambda: frozen
        self.interval = float(interval)
        self.duration = duration
        self.series = ProbeSeries(interval=self.interval)
        self._seen: dict[int, float] = {}
        self.process = env.process(self._run(), name="throughput-probe")

    def _observed_total(self) -> float:
        """Cumulative bytes across all flows ever observed.

        Finished flows keep contributing their final byte counts via the
        ``_seen`` ledger so totals never regress.
        """
        total = 0.0
        for flow in self._flow_source():
            self._seen[flow.id] = flow.transferred
        total = sum(self._seen.values())
        return total

    def _run(self):
        last_total = self._observed_total()
        elapsed = 0.0
        try:
            while self.duration is None or elapsed < self.duration - 1e-12:
                yield self.env.timeout(self.interval)
                elapsed += self.interval
                self.fabric.sync_now()
                total = self._observed_total()
                self.series.samples.append(
                    ProbeSample(time=self.env.now, bytes=total - last_total))
                last_total = total
        except Interrupt:
            pass
        return self.series

    def stop(self) -> ProbeSeries:
        """Stop sampling early and return the collected series."""
        if self.process.is_alive:
            self.process.interrupt("probe-stop")
        return self.series
