"""Fluid-flow network fabric with max-min fair bandwidth sharing.

Flows between endpoints receive piecewise-constant rates. A rate
recomputation happens whenever the constraint picture changes: a flow
starts or finishes, a token bucket empties, or a quantized grant arrives.
Between recomputations, transferred bytes advance linearly, so long
simulated timespans cost only a handful of events.

Constraints are of two kinds:

* :class:`FluidLink` — a fixed shared capacity (e.g. the ~20 GiB/s VPC
  ceiling of Section 4.2.2, or a storage service's aggregate bandwidth);
* :class:`~repro.network.shaper.TokenBucketShaper` attached to an
  :class:`Endpoint` direction — a time-varying aggregate ceiling.

The allocation is standard max-min (progressive filling): repeatedly find
the most contended constraint, freeze its members at their fair share, and
subtract.
"""

from __future__ import annotations

import itertools
from typing import Optional

from repro import units
from repro.network.shaper import TokenBucketShaper
from repro.sim import Environment, Event

#: Rate granted to a flow that crosses no finite constraint (100 Gbps).
DEFAULT_FREE_RATE = 100 * units.Gbps

#: Completion slack for float drift, in bytes.
_EPSILON_BYTES = 1e-6

#: Minimum delay for a scheduled rate-recomputation wake. Guarantees the
#: clock strictly advances between wakes, which float-derived wake times
#: (one ulp short of a grant boundary) otherwise cannot.
_MIN_WAKE_DELAY = 1e-9


class FluidLink:
    """A shared, fixed-capacity network constraint."""

    def __init__(self, capacity: float, name: str = "link") -> None:
        if capacity <= 0:
            raise ValueError(f"capacity must be positive, got {capacity}")
        self.capacity = float(capacity)
        self.name = name

    def __repr__(self) -> str:
        return f"<FluidLink {self.name} {units.gib_per_s(self.capacity):.2f} GiB/s>"


class Endpoint:
    """A network attachment point with optional per-direction shapers.

    ``links`` are implicit shared constraints every flow touching this
    endpoint crosses — e.g. the VPC throughput cap of Section 4.2.2.
    """

    def __init__(self, fabric: "Fabric", name: str,
                 ingress: Optional[TokenBucketShaper] = None,
                 egress: Optional[TokenBucketShaper] = None,
                 links: tuple["FluidLink", ...] = ()) -> None:
        self.fabric = fabric
        self.name = name
        self.ingress = ingress
        self.egress = egress
        self.links = tuple(links)

    def __repr__(self) -> str:
        return f"<Endpoint {self.name}>"


class Flow:
    """A transfer between two endpoints.

    ``size`` may be ``None`` for an open-ended flow (stopped explicitly
    via :meth:`stop`, e.g. an iPerf measurement). ``flow.done`` is an event
    that triggers with the flow once it completes or is stopped.
    """

    _ids = itertools.count()

    def __init__(self, fabric: "Fabric", src: Endpoint, dst: Endpoint,
                 size: Optional[float],
                 links: tuple[FluidLink, ...] = ()) -> None:
        self.id = next(Flow._ids)
        self.fabric = fabric
        self.src = src
        self.dst = dst
        self.size = size
        self.links = tuple(links)
        self.transferred = 0.0
        self.rate = 0.0
        self.started_at = fabric.env.now
        self.finished_at: Optional[float] = None
        self.done: Event = fabric.env.event()
        # Constraints are fixed at creation; cache them (the allocator
        # walks them millions of times in large simulations).
        self._constraints: tuple[object, ...] = self._collect_constraints()
        self._shapers: tuple[TokenBucketShaper, ...] = tuple(
            c for c in self._constraints
            if isinstance(c, TokenBucketShaper))

    @property
    def remaining(self) -> float:
        """Bytes still to transfer; ``inf`` for open-ended flows."""
        if self.size is None:
            return float("inf")
        return max(0.0, self.size - self.transferred)

    @property
    def active(self) -> bool:
        """Whether the flow is still in the fabric."""
        return self.finished_at is None

    def _collect_constraints(self) -> tuple[object, ...]:
        found: list[object] = []
        if self.src.egress is not None:
            found.append(self.src.egress)
        if self.dst.ingress is not None:
            found.append(self.dst.ingress)
        found.extend(self.src.links)
        found.extend(self.dst.links)
        found.extend(self.links)
        return tuple(found)

    def constraints(self) -> tuple[object, ...]:
        """All finite constraints this flow crosses (cached)."""
        return self._constraints

    def shapers(self) -> tuple[TokenBucketShaper, ...]:
        """The token-bucket shapers among the constraints (cached)."""
        return self._shapers

    def stop(self) -> None:
        """Terminate an open-ended flow now."""
        self.fabric.stop_flow(self)

    def __repr__(self) -> str:
        return (f"<Flow #{self.id} {self.src.name}->{self.dst.name} "
                f"{self.transferred:.0f}B rate={self.rate:.0f}B/s>")


class Fabric:
    """Event-driven fluid network simulator."""

    def __init__(self, env: Environment,
                 default_rate: float = DEFAULT_FREE_RATE) -> None:
        self.env = env
        self.default_rate = float(default_rate)
        self._flows: set[Flow] = set()
        self._last_sync = env.now
        self._wake_version = 0
        #: Active-flow count per shaper, for O(1) idle detection.
        self._shaper_members: dict[TokenBucketShaper, int] = {}

    # -- public API ---------------------------------------------------------

    def endpoint(self, name: str,
                 ingress: Optional[TokenBucketShaper] = None,
                 egress: Optional[TokenBucketShaper] = None,
                 links: tuple[FluidLink, ...] = ()) -> Endpoint:
        """Create an endpoint attached to this fabric."""
        return Endpoint(self, name, ingress=ingress, egress=egress, links=links)

    def link(self, capacity: float, name: str = "link") -> FluidLink:
        """Create a shared fixed-capacity constraint."""
        return FluidLink(capacity, name=name)

    def transfer(self, src: Endpoint, dst: Endpoint, size: float,
                 links: tuple[FluidLink, ...] = ()) -> Flow:
        """Start a bounded transfer of ``size`` bytes; returns the flow.

        Processes wait on ``flow.done`` for completion.
        """
        if size <= 0:
            raise ValueError(f"transfer size must be positive, got {size}")
        return self._add_flow(Flow(self, src, dst, float(size), links))

    def open_flow(self, src: Endpoint, dst: Endpoint,
                  links: tuple[FluidLink, ...] = ()) -> Flow:
        """Start an open-ended flow (e.g. a bandwidth measurement)."""
        return self._add_flow(Flow(self, src, dst, None, links))

    def stop_flow(self, flow: Flow) -> None:
        """Remove ``flow`` from the fabric, triggering its ``done`` event."""
        if not flow.active:
            return
        self.sync_now()
        self._finish(flow)
        self._update()

    def sync_now(self) -> None:
        """Advance transferred bytes and bucket levels to ``env.now``.

        Rates are *not* recomputed; use this before reading
        ``flow.transferred`` or shaper levels from a probe.
        """
        now = self.env.now
        elapsed = now - self._last_sync
        if elapsed <= 0:
            return
        consumption = self._shaper_consumption()
        for flow in self._flows:
            flow.transferred += flow.rate * elapsed
        for shaper, rate in consumption.items():
            shaper.advance(now, elapsed, rate)
        self._last_sync = now

    def total_rate(self) -> float:
        """Aggregate rate of all active flows right now (bytes/s)."""
        return sum(flow.rate for flow in self._flows)

    # -- internals ------------------------------------------------------------

    def _add_flow(self, flow: Flow) -> Flow:
        self.sync_now()
        for shaper in flow.shapers():
            shaper.on_activate(self.env.now)
            self._shaper_members[shaper] = \
                self._shaper_members.get(shaper, 0) + 1
        self._flows.add(flow)
        self._update()
        return flow

    def _shaper_consumption(self) -> dict[TokenBucketShaper, float]:
        consumption: dict[TokenBucketShaper, float] = {}
        for flow in self._flows:
            for shaper in flow.shapers():
                consumption[shaper] = (consumption.get(shaper, 0.0)
                                       + flow.rate)
        return consumption

    def _finish(self, flow: Flow) -> None:
        flow.finished_at = self.env.now
        flow.rate = 0.0
        self._flows.discard(flow)
        # Idle-refill shapers that just lost their last flow.
        for shaper in flow.shapers():
            count = self._shaper_members.get(shaper, 1) - 1
            if count <= 0:
                self._shaper_members.pop(shaper, None)
                shaper.on_idle(self.env.now)
            else:
                self._shaper_members[shaper] = count
        flow.done.succeed(flow)

    def _update(self) -> None:
        """Sync, complete finished flows, recompute rates, schedule wake."""
        self.sync_now()
        completed = [flow for flow in self._flows
                     if flow.remaining <= _EPSILON_BYTES]
        for flow in completed:
            if flow.size is not None:
                flow.transferred = flow.size
            self._finish(flow)
        self._recompute_rates()
        self._schedule_wake()

    def _recompute_rates(self) -> None:
        """Max-min fair allocation across all active flows.

        Flows that share no constraint are independent; the allocation
        decomposes into connected components (constraint-sharing groups)
        and progressive filling runs per component. With hundreds of
        workers each behind their own shaper this turns a quadratic
        global solve into near-linear work.
        """
        flows = list(self._flows)
        if not flows:
            return
        members: dict[int, set[Flow]] = {}
        capacity_of: dict[int, float] = {}
        flow_constraints: dict[Flow, list[int]] = {}
        for flow in flows:
            ids = []
            for constraint in flow.constraints():
                # Opaque identity token: used only as a dict key, never
                # ordered — iteration order is insertion (discovery) order.
                key = id(constraint)  # repro-lint: disable=DET004 identity token, never ordered
                if key not in members:
                    if isinstance(constraint, TokenBucketShaper):
                        capacity_of[key] = constraint.allowed_rate()
                    else:
                        capacity_of[key] = constraint.capacity
                    members[key] = set()
                members[key].add(flow)
                ids.append(key)
            flow_constraints[flow] = ids

        # Connected components over the flow/constraint bipartite graph.
        component_of: dict[Flow, int] = {}
        component_id = 0
        for seed in flows:
            if seed in component_of:
                continue
            queue = [seed]
            component_of[seed] = component_id
            while queue:
                flow = queue.pop()
                for key in flow_constraints[flow]:
                    # Sorted by creation id: Flow hashes by address, so
                    # bare set order would vary run to run and reorder
                    # the float arithmetic downstream.
                    for neighbour in sorted(members[key],
                                            key=lambda f: f.id):
                        if neighbour not in component_of:
                            component_of[neighbour] = component_id
                            queue.append(neighbour)
            component_id += 1
        components: list[list[Flow]] = [[] for _ in range(component_id)]
        for flow, cid in component_of.items():
            components[cid].append(flow)

        for component in components:
            self._fill_component(component, members, capacity_of,
                                 flow_constraints)

    def _fill_component(self, flows: list[Flow],
                        members: dict[int, set[Flow]],
                        capacity_of: dict[int, float],
                        flow_constraints: dict[Flow, list[int]]) -> None:
        """Progressive filling within one constraint-sharing component."""
        remaining = {key: capacity_of[key]
                     for flow in flows for key in flow_constraints[flow]}
        live: dict[int, set[Flow]] = {key: members[key] & set(flows)
                                      for key in remaining}
        unfrozen = set(flows)
        while unfrozen:
            best_key = None
            best_share = None
            for key, flows_here in live.items():
                if not flows_here:
                    continue
                share = max(0.0, remaining[key]) / len(flows_here)
                if best_share is None or share < best_share:
                    best_share = share
                    best_key = key
            if best_key is None:
                # No finite constraints left: grant the default free rate.
                for flow in sorted(unfrozen, key=lambda f: f.id):
                    flow.rate = self.default_rate
                break
            frozen_now = sorted(live[best_key], key=lambda f: f.id)
            for flow in frozen_now:
                flow.rate = best_share
                unfrozen.discard(flow)
                for key in flow_constraints[flow]:
                    remaining[key] -= best_share
                    live[key].discard(flow)

    def _schedule_wake(self) -> None:
        now = self.env.now
        wake_at = float("inf")
        # Flow completions.
        for flow in self._flows:
            if flow.size is not None and flow.rate > 0:
                wake_at = min(wake_at, now + flow.remaining / flow.rate)
        # Shaper state changes.
        for shaper, rate in self._shaper_consumption().items():
            wake_at = min(wake_at, shaper.next_change(now, rate))
        self._wake_version += 1
        if wake_at == float("inf"):
            return
        version = self._wake_version
        delay = max(_MIN_WAKE_DELAY, wake_at - now)
        timeout = self.env.timeout(delay)
        timeout.callbacks.append(lambda _event: self._on_wake(version))

    def _on_wake(self, version: int) -> None:
        if version != self._wake_version:
            return  # superseded by a newer recomputation
        self._update()
