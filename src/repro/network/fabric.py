"""Fluid-flow network fabric with max-min fair bandwidth sharing.

Flows between endpoints receive piecewise-constant rates. A rate
recomputation happens whenever the constraint picture changes: a flow
starts or finishes, a token bucket empties, or a quantized grant arrives.
Between recomputations, transferred bytes advance linearly, so long
simulated timespans cost only a handful of events.

Constraints are of two kinds:

* :class:`FluidLink` — a fixed shared capacity (e.g. the ~20 GiB/s VPC
  ceiling of Section 4.2.2, or a storage service's aggregate bandwidth);
* :class:`~repro.network.shaper.TokenBucketShaper` attached to an
  :class:`Endpoint` direction — a time-varying aggregate ceiling.

The allocation is standard max-min (progressive filling): repeatedly find
the most contended constraint, freeze its members at their fair share, and
subtract.
"""

from __future__ import annotations

import itertools
from typing import Optional

from repro import units
from repro.network.shaper import TokenBucketShaper
from repro.sim import Environment, Event
from repro.telemetry import get_recorder

#: Rate granted to a flow that crosses no finite constraint (100 Gbps).
DEFAULT_FREE_RATE = 100 * units.Gbps

#: Completion slack for float drift, in bytes.
_EPSILON_BYTES = 1e-6

#: Minimum delay for a scheduled rate-recomputation wake. Guarantees the
#: clock strictly advances between wakes, which float-derived wake times
#: (one ulp short of a grant boundary) otherwise cannot.
_MIN_WAKE_DELAY = 1e-9


class FluidLink:
    """A shared, fixed-capacity network constraint."""

    def __init__(self, capacity: float, name: str = "link") -> None:
        if capacity <= 0:
            raise ValueError(f"capacity must be positive, got {capacity}")
        self.capacity = float(capacity)
        self.name = name

    def __repr__(self) -> str:
        return f"<FluidLink {self.name} {units.gib_per_s(self.capacity):.2f} GiB/s>"


class Endpoint:
    """A network attachment point with optional per-direction shapers.

    ``links`` are implicit shared constraints every flow touching this
    endpoint crosses — e.g. the VPC throughput cap of Section 4.2.2.
    """

    def __init__(self, fabric: "Fabric", name: str,
                 ingress: Optional[TokenBucketShaper] = None,
                 egress: Optional[TokenBucketShaper] = None,
                 links: tuple["FluidLink", ...] = ()) -> None:
        self.fabric = fabric
        self.name = name
        self.ingress = ingress
        self.egress = egress
        self.links = tuple(links)

    def __repr__(self) -> str:
        return f"<Endpoint {self.name}>"


class Flow:
    """A transfer between two endpoints.

    ``size`` may be ``None`` for an open-ended flow (stopped explicitly
    via :meth:`stop`, e.g. an iPerf measurement). ``flow.done`` is an event
    that triggers with the flow once it completes or is stopped.
    """

    _ids = itertools.count()

    def __init__(self, fabric: "Fabric", src: Endpoint, dst: Endpoint,
                 size: Optional[float],
                 links: tuple[FluidLink, ...] = ()) -> None:
        self.id = next(Flow._ids)
        self.fabric = fabric
        self.src = src
        self.dst = dst
        self.size = size
        self.links = tuple(links)
        self.transferred = 0.0
        self.rate = 0.0
        self.started_at = fabric.env.now
        self.finished_at: Optional[float] = None
        self.done: Event = fabric.env.event()
        # Constraints are fixed at creation; cache them (the allocator
        # walks them millions of times in large simulations).
        self._constraints: tuple[object, ...] = self._collect_constraints()
        self._shapers: tuple[TokenBucketShaper, ...] = tuple(
            c for c in self._constraints
            if isinstance(c, TokenBucketShaper))
        # Opaque identity tokens for the fabric's constraint registry —
        # used only as dict keys, never ordered. The registry pins each
        # constraint object while it has members, so tokens cannot be
        # reused while registered.
        self._keys: tuple[int, ...] = tuple(
            id(c) for c in self._constraints)  # repro-lint: disable=DET004 identity token, never ordered

    @property
    def remaining(self) -> float:
        """Bytes still to transfer; ``inf`` for open-ended flows."""
        if self.size is None:
            return float("inf")
        return max(0.0, self.size - self.transferred)

    @property
    def active(self) -> bool:
        """Whether the flow is still in the fabric."""
        return self.finished_at is None

    def _collect_constraints(self) -> tuple[object, ...]:
        found: list[object] = []
        if self.src.egress is not None:
            found.append(self.src.egress)
        if self.dst.ingress is not None:
            found.append(self.dst.ingress)
        found.extend(self.src.links)
        found.extend(self.dst.links)
        found.extend(self.links)
        return tuple(found)

    def constraints(self) -> tuple[object, ...]:
        """All finite constraints this flow crosses (cached)."""
        return self._constraints

    def shapers(self) -> tuple[TokenBucketShaper, ...]:
        """The token-bucket shapers among the constraints (cached)."""
        return self._shapers

    def stop(self) -> None:
        """Terminate an open-ended flow now."""
        self.fabric.stop_flow(self)

    def __repr__(self) -> str:
        return (f"<Flow #{self.id} {self.src.name}->{self.dst.name} "
                f"{self.transferred:.0f}B rate={self.rate:.0f}B/s>")


class _ConstraintState:
    """Fabric-side registry entry for one constraint with active flows.

    Holds a strong reference to the constraint (so its identity token
    stays valid while registered), the member flows, the capacity used
    in the last allocation (drift against ``allowed_rate()`` marks the
    constraint dirty), and — for shapers — the cached sum of member
    rates in flow-creation order (a pure function of the members, so it
    only needs recomputing when the member component is reallocated).
    """

    __slots__ = ("constraint", "is_shaper", "members", "capacity",
                 "consumption")

    def __init__(self, constraint: object) -> None:
        self.constraint = constraint
        self.is_shaper = isinstance(constraint, TokenBucketShaper)
        self.members: set[Flow] = set()
        self.capacity = 0.0
        self.consumption = 0.0


class Fabric:
    """Event-driven fluid network simulator.

    Rates are recomputed *incrementally*: the fabric keeps a registry of
    constraints with active flows, marks constraints dirty when their
    membership or allowed rate changes, and reallocates only the
    connected components reachable from dirty constraints. Components
    the change cannot reach keep their rates — and because the
    per-component fill is a pure function of the component's membership
    and capacities (canonical flow-creation order throughout), the
    incremental allocation is bit-for-bit identical to a from-scratch
    one (:meth:`_recompute_rates`, kept as the reference and exercised
    against the incremental path by the property tests).
    """

    def __init__(self, env: Environment,
                 default_rate: float = DEFAULT_FREE_RATE) -> None:
        self.env = env
        self.default_rate = float(default_rate)
        self._flows: set[Flow] = set()
        self._last_sync = env.now
        self._wake_version = 0
        #: Constraint registry, keyed by the flows' identity tokens.
        self._states: dict[int, _ConstraintState] = {}
        #: Constraint keys whose component needs reallocating.
        self._dirty: set[int] = set()
        #: Testing hook: force from-scratch recomputation on every
        #: update (the reference the incremental path must match).
        self._force_full = False
        # With telemetry recording, shapers emit events as they advance,
        # so the sweep must keep its historical (flow-creation) order;
        # without a recorder the order is unobservable and the registry
        # sweep is used. Captured at construction, like the shapers do.
        self._ordered_sync = get_recorder().enabled

    # -- public API ---------------------------------------------------------

    def endpoint(self, name: str,
                 ingress: Optional[TokenBucketShaper] = None,
                 egress: Optional[TokenBucketShaper] = None,
                 links: tuple[FluidLink, ...] = ()) -> Endpoint:
        """Create an endpoint attached to this fabric."""
        return Endpoint(self, name, ingress=ingress, egress=egress, links=links)

    def link(self, capacity: float, name: str = "link") -> FluidLink:
        """Create a shared fixed-capacity constraint."""
        return FluidLink(capacity, name=name)

    def transfer(self, src: Endpoint, dst: Endpoint, size: float,
                 links: tuple[FluidLink, ...] = ()) -> Flow:
        """Start a bounded transfer of ``size`` bytes; returns the flow.

        Processes wait on ``flow.done`` for completion.
        """
        if size <= 0:
            raise ValueError(f"transfer size must be positive, got {size}")
        return self._add_flow(Flow(self, src, dst, float(size), links))

    def open_flow(self, src: Endpoint, dst: Endpoint,
                  links: tuple[FluidLink, ...] = ()) -> Flow:
        """Start an open-ended flow (e.g. a bandwidth measurement)."""
        return self._add_flow(Flow(self, src, dst, None, links))

    def stop_flow(self, flow: Flow) -> None:
        """Remove ``flow`` from the fabric, triggering its ``done`` event."""
        if not flow.active:
            return
        self.sync_now()
        self._finish(flow)
        self._update()

    def sync_now(self) -> None:
        """Advance transferred bytes and bucket levels to ``env.now``.

        Rates are *not* recomputed; use this before reading
        ``flow.transferred`` or shaper levels from a probe.
        """
        now = self.env.now
        elapsed = now - self._last_sync
        if elapsed <= 0:
            return
        for flow in self._flows:
            flow.transferred += flow.rate * elapsed
        if self._ordered_sync:
            for shaper, rate in self._shaper_consumption().items():
                shaper.advance(now, elapsed, rate)
        else:
            for state in self._states.values():
                if state.is_shaper:
                    state.constraint.advance(now, elapsed,
                                             state.consumption)
        self._last_sync = now

    def total_rate(self) -> float:
        """Aggregate rate of all active flows right now (bytes/s)."""
        return sum(flow.rate for flow in self._flows)

    # -- internals ------------------------------------------------------------

    def _add_flow(self, flow: Flow) -> Flow:
        self.sync_now()
        now = self.env.now
        states = self._states
        dirty = self._dirty
        for shaper in flow.shapers():
            shaper.on_activate(now)
        for constraint, key in zip(flow.constraints(), flow._keys):
            state = states.get(key)
            if state is None:
                states[key] = state = _ConstraintState(constraint)
            state.members.add(flow)
            dirty.add(key)
        self._flows.add(flow)
        if not flow._keys:
            # Crosses no finite constraint: the free rate, immediately
            # (exactly what a one-flow fill with no constraints grants).
            flow.rate = self.default_rate
        self._update()
        return flow

    def _shaper_consumption(self) -> dict[TokenBucketShaper, float]:
        # Summation runs in flow-creation order: the per-shaper sum must
        # be a pure function of the shaper's member set so the cached
        # (incremental) and from-scratch paths produce identical floats.
        consumption: dict[TokenBucketShaper, float] = {}
        for flow in sorted(self._flows, key=lambda f: f.id):
            for shaper in flow.shapers():
                consumption[shaper] = (consumption.get(shaper, 0.0)
                                       + flow.rate)
        return consumption

    def _finish(self, flow: Flow) -> None:
        now = self.env.now
        flow.finished_at = now
        flow.rate = 0.0
        self._flows.discard(flow)
        states = self._states
        dirty = self._dirty
        for constraint, key in zip(flow.constraints(), flow._keys):
            state = states.get(key)
            if state is None:
                continue
            state.members.discard(flow)
            if state.members:
                dirty.add(key)
            else:
                # Last member gone: drop the registry entry (releasing
                # the identity pin) and idle-refill shapers.
                del states[key]
                dirty.discard(key)
                if state.is_shaper:
                    constraint.on_idle(now)
        flow.done.succeed(flow)

    def _update(self) -> None:
        """Sync, complete finished flows, recompute rates, schedule wake."""
        self.sync_now()
        completed = [flow for flow in self._flows
                     if flow.remaining <= _EPSILON_BYTES]
        for flow in completed:
            if flow.size is not None:
                flow.transferred = flow.size
            self._finish(flow)
        if self._force_full:
            self._recompute_rates()
        else:
            self._recompute_dirty()
        self._schedule_wake()

    def _recompute_dirty(self) -> None:
        """Reallocate only the components a change can have affected.

        Dirty seeds are constraints whose membership changed since the
        last allocation plus shapers whose ``allowed_rate()`` drifted
        from the capacity used then (budget exhaustion, grant arrival,
        idle refill, chaos degradation). The affected region is the
        union of the connected components containing a seed; everything
        outside it kept both its membership and its capacities, so its
        previous rates are exactly what a full recompute would produce.
        """
        states = self._states
        dirty = self._dirty
        for key, state in states.items():
            if (state.is_shaper
                    and state.constraint.allowed_rate() != state.capacity):
                dirty.add(key)
        if not dirty:
            return
        self._dirty = set()
        # Closure over the flow/constraint bipartite graph.
        affected: set[Flow] = set()
        stack = [key for key in dirty if key in states]
        seen_keys = set(stack)
        while stack:
            for flow in states[stack.pop()].members:
                if flow not in affected:
                    affected.add(flow)
                    for other in flow._keys:
                        if other not in seen_keys:
                            seen_keys.add(other)
                            stack.append(other)
        self._allocate(affected)

    def _recompute_rates(self) -> None:
        """From-scratch max-min allocation over all active flows.

        The reference implementation: recomputes every component. The
        normal update path uses :meth:`_recompute_dirty`; this method
        backs the ``_force_full`` testing hook, and the equivalence
        property tests check the two paths produce identical rates.
        """
        self._dirty = set()
        self._allocate(self._flows)

    def _allocate(self, flows) -> None:
        """Decompose ``flows`` into components and fill each.

        ``flows`` must be a union of whole connected components.
        """
        component_of: dict[Flow, int] = {}
        component_id = 0
        states = self._states
        for seed in flows:
            if seed in component_of:
                continue
            queue = [seed]
            component_of[seed] = component_id
            while queue:
                for key in queue.pop()._keys:
                    for neighbour in states[key].members:
                        if neighbour not in component_of:
                            component_of[neighbour] = component_id
                            queue.append(neighbour)
            component_id += 1
        components: list[list[Flow]] = [[] for _ in range(component_id)]
        for flow, cid in component_of.items():
            components[cid].append(flow)
        for component in components:
            # Creation-id order, not discovery order: the fill must be a
            # pure function of the component's membership so incremental
            # recomputation reproduces a full one bit for bit.
            component.sort(key=lambda f: f.id)
            self._fill_component(component)

    def _fill_component(self, flows: list[Flow]) -> None:
        """Progressive filling within one constraint-sharing component.

        ``flows`` must be a whole component in flow-creation order.
        Updates each member's rate, and refreshes the component's
        registry entries (capacity used, cached consumption sums).
        """
        states = self._states
        remaining: dict[int, float] = {}
        live: dict[int, set[Flow]] = {}
        for flow in flows:
            for key in flow._keys:
                if key not in remaining:
                    state = states[key]
                    constraint = state.constraint
                    if state.is_shaper:
                        capacity = constraint.allowed_rate()
                    else:
                        capacity = constraint.capacity
                    state.capacity = capacity
                    remaining[key] = capacity
                    # The component closure makes members ⊆ flows.
                    live[key] = set(state.members)
        unfrozen = set(flows)
        while unfrozen:
            best_key = None
            best_share = None
            for key, flows_here in live.items():
                if not flows_here:
                    continue
                share = max(0.0, remaining[key]) / len(flows_here)
                if best_share is None or share < best_share:
                    best_share = share
                    best_key = key
            if best_key is None:
                # No finite constraints left: grant the default free rate.
                for flow in sorted(unfrozen, key=lambda f: f.id):
                    flow.rate = self.default_rate
                break
            frozen_now = sorted(live[best_key], key=lambda f: f.id)
            for flow in frozen_now:
                flow.rate = best_share
                unfrozen.discard(flow)
                for key in flow._keys:
                    remaining[key] -= best_share
                    live[key].discard(flow)
        # Refresh the cached consumption sums (flow-creation order, the
        # same partial sums _shaper_consumption computes from scratch).
        for key in remaining:
            state = states[key]
            if state.is_shaper:
                total = 0.0
                for flow in sorted(state.members, key=lambda f: f.id):
                    total += flow.rate
                state.consumption = total

    def _schedule_wake(self) -> None:
        now = self.env.now
        wake_at = float("inf")
        # Flow completions.
        for flow in self._flows:
            rate = flow.rate
            if flow.size is not None and rate > 0:
                upcoming = now + max(0.0, flow.size - flow.transferred) / rate
                if upcoming < wake_at:
                    wake_at = upcoming
        # Shaper state changes.
        if self._ordered_sync:
            shaper_rates = self._shaper_consumption().items()
        else:
            shaper_rates = ((state.constraint, state.consumption)
                            for state in self._states.values()
                            if state.is_shaper)
        for shaper, rate in shaper_rates:
            upcoming = shaper.next_change(now, rate)
            if upcoming < wake_at:
                wake_at = upcoming
        self._wake_version += 1
        if wake_at == float("inf"):
            return
        version = self._wake_version
        delay = max(_MIN_WAKE_DELAY, wake_at - now)
        timeout = self.env.timeout(delay)
        timeout.callbacks.append(lambda _event: self._on_wake(version))

    def _on_wake(self, version: int) -> None:
        if version != self._wake_version:
            return  # superseded by a newer recomputation
        self._update()
