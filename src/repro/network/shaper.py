"""Token-bucket traffic shapers.

A shaper limits the aggregate rate of all flows crossing one direction of
an endpoint. Two refill disciplines are supported:

* ``continuous`` — tokens accrue at ``refill_rate`` up to ``capacity``
  (EC2-style). While tokens remain, traffic may drain at ``burst_rate``;
  once the bucket is empty, traffic proceeds at ``refill_rate``.
* ``quantized`` — tokens arrive in discrete ``quantum``-sized grants every
  ``grant_interval`` seconds (Lambda-style). Once the bucket is empty the
  flow stalls until the next grant, producing the characteristic spiky
  baseline of Figure 5.

Additionally, a shaper can hold a *one-off budget* that is spent before the
rechargeable bucket and never comes back (the non-rechargeable ~150 MiB the
paper finds on Lambda), and an *idle refill level* the bucket snaps back to
when the endpoint stops sending (the "refills halfway" behaviour).
"""

from __future__ import annotations

import math
from dataclasses import dataclass

from repro import units
from repro.telemetry import get_recorder

#: Minimum virtual-time spacing between telemetry samples of a shaper's
#: bucket level / allowed rate. The fabric can advance a shaper many
#: times per grant interval; 2 ms resolves the 100 ms grant sawtooth of
#: Figure 5 while keeping series bounded.
_SAMPLE_MIN_DT = 0.002


#: Bucket levels below this many bytes are clamped to zero; float residue
#: otherwise produces asymptotic micro-wakeups in the fabric.
_EPSILON_BYTES = 1e-3

#: Tolerance when comparing simulated timestamps (seconds).
_TIME_TOLERANCE = 1e-9

#: Minimum idle duration before the "refill halfway" behaviour applies.
#: Back-to-back requests with millisecond gaps do not count as the
#: function "stopping to utilize the network" (Section 4.2.1); the
#: paper's refill observation used a 3-second break.
IDLE_REFILL_MIN_S = 1.0


@dataclass
class ShaperState:
    """Snapshot of a shaper's bucket for inspection and testing."""

    level: float
    one_off_remaining: float
    mode: str


class TokenBucketShaper:
    """Aggregate token-bucket rate limiter for one traffic direction.

    The shaper is driven by the fabric: :meth:`advance` consumes tokens for
    an elapsed interval at a given consumption rate, :meth:`allowed_rate`
    reports the current aggregate ceiling, and :meth:`next_change` tells the
    fabric when the ceiling will change so it can schedule a rate
    recomputation.
    """

    def __init__(self, capacity: float, burst_rate: float,
                 refill_rate: float, mode: str = "continuous",
                 one_off_budget: float = 0.0,
                 idle_refill_level: float | None = None,
                 grant_interval: float = 0.1,
                 initial_level: float | None = None,
                 name: str | None = None) -> None:
        if mode not in ("continuous", "quantized"):
            raise ValueError(f"unknown shaper mode {mode!r}")
        if capacity < 0 or burst_rate <= 0 or refill_rate < 0:
            raise ValueError("capacity/burst/refill must be non-negative "
                             "(burst strictly positive)")
        self.capacity = float(capacity)
        self.burst_rate = float(burst_rate)
        self.refill_rate = float(refill_rate)
        self.mode = mode
        self.one_off_budget = float(one_off_budget)
        self.one_off_remaining = float(one_off_budget)
        self.idle_refill_level = (float(idle_refill_level)
                                  if idle_refill_level is not None else None)
        self.grant_interval = float(grant_interval)
        self._level = float(initial_level if initial_level is not None else capacity)
        #: Absolute time of the next quantized grant (stateful, to avoid
        #: float-grid mismatches between scheduling and accounting).
        self._next_grant_at = self.grant_interval
        #: When the shaper last went idle (None while active).
        self._idle_since: float | None = None
        # Telemetry is captured at construction: enable() must precede
        # simulation setup. Disabled recorders cost one None-check here.
        recorder = get_recorder()
        if recorder.enabled:
            self._telemetry = recorder
            label = recorder.unique_name(f"shaper.{name or mode}")
            self.telemetry_name = label
            self._level_series = recorder.timeseries(
                f"{label}.level", min_dt=_SAMPLE_MIN_DT)
            self._rate_series = recorder.timeseries(
                f"{label}.allowed_rate", min_dt=_SAMPLE_MIN_DT)
            self._throttle_counter = recorder.counter(
                "shaper.throttle_transitions")
            self._was_throttled = self.budget <= 0
        else:
            self._telemetry = None
            self.telemetry_name = name or mode

    # -- inspection ---------------------------------------------------------

    @property
    def level(self) -> float:
        """Tokens currently in the rechargeable bucket (bytes)."""
        return self._level

    @property
    def budget(self) -> float:
        """Total immediately spendable bytes (one-off + bucket)."""
        return self.one_off_remaining + self._level

    def state(self) -> ShaperState:
        """Return a snapshot for assertions in tests."""
        return ShaperState(level=self._level,
                           one_off_remaining=self.one_off_remaining,
                           mode=self.mode)

    # -- fabric interface ---------------------------------------------------

    def allowed_rate(self) -> float:
        """Aggregate rate ceiling right now (bytes/second)."""
        if self.budget > 0:
            return self.burst_rate
        if self.mode == "continuous":
            return min(self.refill_rate, self.burst_rate)
        return 0.0  # quantized: stalled until the next grant

    def advance(self, now: float, elapsed: float, consumed_rate: float) -> None:
        """Account for ``elapsed`` seconds of consumption at ``consumed_rate``.

        The fabric guarantees ``consumed_rate <= allowed_rate()`` held for
        the whole interval (it schedules a recompute at every state change).
        """
        if elapsed < 0:
            raise ValueError(f"negative elapsed time {elapsed}")
        if elapsed == 0:
            return
        consumed = consumed_rate * elapsed
        if self.mode == "continuous":
            refilled = self.refill_rate * elapsed
            # One-off budget is spent first and never refills.
            from_one_off = min(consumed, self.one_off_remaining)
            self.one_off_remaining -= from_one_off
            net = (consumed - from_one_off) - refilled
            self._level = min(self.capacity, max(0.0, self._level - net))
        else:
            grants = self._grants_between(now - elapsed, now)
            from_one_off = min(consumed, self.one_off_remaining)
            self.one_off_remaining -= from_one_off
            remaining = consumed - from_one_off
            self._level = min(self.capacity,
                              max(0.0, self._level + grants - remaining))
        # Clamp float residue so exhaustion is reached exactly, not
        # asymptotically (which would flood the fabric with micro-wakeups).
        if self._level < _EPSILON_BYTES:
            self._level = 0.0
        if self.one_off_remaining < _EPSILON_BYTES:
            self.one_off_remaining = 0.0
        if self._telemetry is not None:
            self._level_series.sample(now, self._level)
            self._rate_series.sample(now, self.allowed_rate())
            throttled = self.budget <= 0
            if throttled != self._was_throttled:
                self._was_throttled = throttled
                self._throttle_counter.value += 1
                self._telemetry.event(
                    now, "shaper.throttled" if throttled
                    else "shaper.recovered",
                    category="network", shaper=self.telemetry_name)

    def _grants_between(self, start: float, end: float) -> float:
        """Bytes granted by quantized refill up to time ``end``.

        Consumes the stateful grant schedule: every grant with a due time
        at or before ``end`` (with a small tolerance for float drift) is
        delivered exactly once.
        """
        del start  # the stateful schedule makes the interval start moot
        if self.refill_rate <= 0:
            return 0.0
        if self._next_grant_at > end + _TIME_TOLERANCE:
            return 0.0
        quantum = self.refill_rate * self.grant_interval
        count = 1 + math.floor(
            (end + _TIME_TOLERANCE - self._next_grant_at) / self.grant_interval)
        self._next_grant_at += count * self.grant_interval
        return count * quantum

    def next_change(self, now: float, consumed_rate: float) -> float:
        """Absolute time at which :meth:`allowed_rate` next changes.

        Returns ``inf`` if the ceiling is stable under the given
        consumption rate.
        """
        if self.budget > 0:
            if self.mode == "continuous":
                net_drain = consumed_rate - self.refill_rate
            else:
                net_drain = consumed_rate  # grants are discrete, handled below
            if net_drain > 0:
                exhaust = now + self.budget / net_drain
            else:
                exhaust = float("inf")
            if self.mode == "quantized":
                return min(exhaust, self._next_grant_time(now))
            return exhaust
        if self.mode == "quantized":
            return self._next_grant_time(now)
        return float("inf")

    def _next_grant_time(self, now: float) -> float:
        if self.refill_rate <= 0:
            return float("inf")
        due = self._next_grant_at
        while due <= now + _TIME_TOLERANCE:
            due += self.grant_interval
        return due

    def degrade(self, factor: float) -> None:
        """Scale this shaper's rates down by ``factor`` (0 < factor <= 1).

        Models a sandbox that drew a slow NIC (the placement-dependent
        bandwidth variance of Section 4.2): both the burst and refill
        rates shrink, so the endpoint is a persistent straggler for its
        whole lifetime. Used by the chaos subsystem's ``network_degrade``
        fault.
        """
        if not 0.0 < factor <= 1.0:
            raise ValueError(f"factor must be in (0, 1], got {factor}")
        self.burst_rate *= factor
        self.refill_rate *= factor

    def on_idle(self, now: float = 0.0) -> None:
        """The last flow through this shaper stopped at time ``now``."""
        if self.idle_refill_level is not None and self._idle_since is None:
            self._idle_since = now

    def on_activate(self, now: float = 0.0) -> None:
        """A flow starts using the shaper again.

        If the shaper sat idle for at least :data:`IDLE_REFILL_MIN_S`,
        the bucket snaps up to its idle refill level ("refills halfway to
        the initial capacity", Section 4.2.1).
        """
        if (self.idle_refill_level is not None
                and self._idle_since is not None
                and now - self._idle_since >= IDLE_REFILL_MIN_S):
            self._level = max(self._level, self.idle_refill_level)
        self._idle_since = None

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (f"<TokenBucketShaper {self.mode} level={self._level:.0f} "
                f"one_off={self.one_off_remaining:.0f}>")


#: Calibration constants from Section 4.2 of the paper. The inbound and
#: outbound buckets are maintained independently; each starts with ~300 MiB
#: of spendable budget (150 MiB one-off + 150 MiB rechargeable), drains at
#: burst rate, and once empty receives 7.5 MiB grants every 100 ms.
LAMBDA_BURST_RATE_IN = 1.2 * units.GiB
LAMBDA_BURST_RATE_OUT = 0.8 * units.GiB
LAMBDA_ONE_OFF_BUDGET = 150 * units.MiB
LAMBDA_BUCKET_CAPACITY = 150 * units.MiB
LAMBDA_BASELINE_RATE = 75 * units.MiB
LAMBDA_GRANT_INTERVAL = 0.1


def lambda_shaper(direction: str = "in",
                  name: str | None = None) -> TokenBucketShaper:
    """Shaper calibrated to the Lambda network model of Section 4.2."""
    if direction not in ("in", "out"):
        raise ValueError(f"direction must be 'in' or 'out', got {direction!r}")
    burst = LAMBDA_BURST_RATE_IN if direction == "in" else LAMBDA_BURST_RATE_OUT
    return TokenBucketShaper(
        capacity=LAMBDA_BUCKET_CAPACITY,
        burst_rate=burst,
        refill_rate=LAMBDA_BASELINE_RATE,
        mode="quantized",
        one_off_budget=LAMBDA_ONE_OFF_BUDGET,
        idle_refill_level=LAMBDA_BUCKET_CAPACITY,
        grant_interval=LAMBDA_GRANT_INTERVAL,
        initial_level=LAMBDA_BUCKET_CAPACITY,
        name=name or f"lambda/{direction}",
    )


def ec2_shaper(baseline_rate: float, burst_rate: float,
               bucket_bytes: float,
               name: str | None = None) -> TokenBucketShaper:
    """EC2-style shaper: continuous refill at baseline, drain at burst."""
    return TokenBucketShaper(
        capacity=bucket_bytes,
        burst_rate=burst_rate,
        refill_rate=baseline_rate,
        mode="continuous",
        initial_level=bucket_bytes,
        name=name or "ec2",
    )
