"""iPerf3-style network measurement on the simulated fabric.

Mirrors the paper's network I/O microbenchmark function: a client endpoint
sends or receives randomly generated data for a pre-specified time while a
probe samples throughput at a fixed interval (20 ms in the paper). Helper
routines estimate the burst profile (burst rate, baseline rate, token
bucket size) from a measured series, which is how Figure 6's bars are
derived.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional

from repro.network.fabric import Endpoint, Fabric, FluidLink
from repro.network.probe import ProbeSeries, ThroughputProbe
from repro.sim import Environment


@dataclass
class BurstProfile:
    """Summary of a token-bucket-shaped throughput series."""

    burst_rate: float
    baseline_rate: float
    bucket_bytes: float
    burst_duration: float


@dataclass
class IperfResult:
    """Outcome of one iPerf measurement run."""

    series: ProbeSeries
    duration: float
    bytes_transferred: float

    @property
    def mean_rate(self) -> float:
        """Average throughput over the full run (bytes/s)."""
        if self.duration <= 0:
            return 0.0
        return self.bytes_transferred / self.duration

    def burst_profile(self) -> BurstProfile:
        """Estimate burst/baseline rates and bucket size from the series."""
        return estimate_burst_profile(self.series)


class IperfServer:
    """A high-bandwidth measurement peer.

    The paper deploys iPerf3 servers on network-optimized EC2 instances so
    the server never bottlenecks; ``capacity`` models the server NIC and is
    shared by all concurrent client flows against this server.
    """

    def __init__(self, env: Environment, fabric: Fabric, name: str = "iperf-server",
                 capacity: Optional[float] = None) -> None:
        self.env = env
        self.fabric = fabric
        self.endpoint = fabric.endpoint(name)
        self.nic: tuple[FluidLink, ...] = ()
        if capacity is not None:
            self.nic = (fabric.link(capacity, name=f"{name}-nic"),)


class IperfClient:
    """Times a fixed-duration transfer against an :class:`IperfServer`."""

    def __init__(self, env: Environment, fabric: Fabric, endpoint: Endpoint,
                 server: IperfServer,
                 extra_links: tuple[FluidLink, ...] = ()) -> None:
        self.env = env
        self.fabric = fabric
        self.endpoint = endpoint
        self.server = server
        self.extra_links = tuple(extra_links)

    def run(self, duration: float, direction: str = "download",
            sample_interval: float = 0.02):
        """Process: measure throughput for ``duration`` seconds.

        ``direction`` is ``"download"`` (server -> client, exercising the
        client's ingress shaper) or ``"upload"``.
        Returns an :class:`IperfResult`.
        """
        if direction not in ("download", "upload"):
            raise ValueError(f"direction must be download/upload, got {direction!r}")
        links = self.server.nic + self.extra_links
        if direction == "download":
            flow = self.fabric.open_flow(self.server.endpoint, self.endpoint, links)
        else:
            flow = self.fabric.open_flow(self.endpoint, self.server.endpoint, links)
        probe = ThroughputProbe(self.env, self.fabric, [flow],
                                interval=sample_interval, duration=duration)
        yield self.env.timeout(duration)
        flow.stop()
        series = probe.stop()
        return IperfResult(series=series, duration=duration,
                           bytes_transferred=flow.transferred)


def estimate_burst_profile(series: ProbeSeries,
                           burst_fraction: float = 0.5) -> BurstProfile:
    """Derive burst rate, baseline rate, and bucket size from a series.

    The baseline is taken as the mean rate over the final quarter of the
    series (after any burst has drained); the burst phase is the initial
    run of samples whose rate exceeds ``baseline + burst_fraction *
    (peak - baseline)``; the bucket size is the excess bytes above baseline
    accumulated during that phase.
    """
    rates = series.rates()
    if not rates:
        return BurstProfile(0.0, 0.0, 0.0, 0.0)
    tail_start = max(1, len(rates) * 3 // 4)
    baseline = sum(rates[tail_start:]) / max(1, len(rates) - tail_start)
    peak = max(rates)
    threshold = baseline + burst_fraction * (peak - baseline)
    burst_samples = 0
    for rate in rates:
        if rate >= threshold and peak > baseline * 1.01:
            burst_samples += 1
        else:
            break
    burst_duration = burst_samples * series.interval
    if burst_samples:
        burst_rate = sum(rates[:burst_samples]) / burst_samples
    else:
        burst_rate = baseline
    # Bucket size: bytes above baseline within the burst phase only — the
    # spiky post-burst regime (quantized grants) must not inflate it.
    excess = sum(max(0.0, rate - baseline) * series.interval
                 for rate in rates[:burst_samples])
    return BurstProfile(burst_rate=burst_rate, baseline_rate=baseline,
                        bucket_bytes=excess, burst_duration=burst_duration)
