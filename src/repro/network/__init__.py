"""Network fabric simulation.

Models the two rate-limiting regimes the paper reverse-engineers in
Section 4.2:

* **AWS Lambda**: a dual token bucket per function (independent inbound and
  outbound), each with ~150 MiB of one-off budget plus ~150 MiB of
  rechargeable capacity, drained at ~1.2 GiB/s burst; once empty, 7.5 MiB
  quanta are granted every 100 ms (75 MiB/s baseline). Idle refills the
  bucket back to half the initial capacity.
* **AWS EC2**: per-instance token buckets with continuous refill at the
  instance's baseline bandwidth and drain at its burst bandwidth; bucket
  size grows with instance size.

Flows between endpoints traverse a set of capacity constraints (endpoint
shapers plus shared :class:`FluidLink` capacities, e.g. a VPC throughput
cap) and receive max-min fair rates, recomputed event-drivenly.
"""

from repro.network.shaper import TokenBucketShaper, lambda_shaper, ec2_shaper
from repro.network.fabric import Endpoint, Fabric, Flow, FluidLink
from repro.network.probe import ThroughputProbe
from repro.network.iperf import IperfClient, IperfServer, IperfResult

__all__ = [
    "Endpoint",
    "Fabric",
    "Flow",
    "FluidLink",
    "IperfClient",
    "IperfResult",
    "IperfServer",
    "ThroughputProbe",
    "TokenBucketShaper",
    "ec2_shaper",
    "lambda_shaper",
]
