"""The experiment driver: config in, JSON result out (Figure 3).

Each experiment defines a configuration, which is submitted to the
driver. Depending on the experiment level, the driver invokes the right
microbenchmark function (or the query engine), aggregates the metrics,
estimates the experiment cost, and returns an
:class:`~repro.core.results.ExperimentResult`.
"""

from __future__ import annotations

from repro import units
from repro.core.config import ExperimentConfig
from repro.core.context import CloudSim
from repro.core.micro import (
    measure_idle_lifetime,
    measure_startup_latency,
    run_ec2_network_profile,
    run_function_network_burst,
    run_network_scaling,
    run_s3_downscaling,
    run_s3_iops_scaling,
    run_storage_iops,
    run_storage_latency,
    run_storage_throughput,
)
from repro.core.results import ExperimentResult
from repro.pricing.calculator import CostCalculator
from repro.storage.base import RequestType


class Driver:
    """Executes experiment configurations on fresh simulated environments."""

    #: Experiment kinds contributed by higher layers. The driver never
    #: imports upward (see ``repro.lint.layer_dag``): a layer that owns
    #: a kind registers its handler here at import time, in the style
    #: of ``Environment.set_monitor`` — e.g. ``repro.workloads.suite``
    #: registers ``"query"``.
    _external_kinds: dict = {}

    def __init__(self, base_seed: int = 0) -> None:
        self.base_seed = base_seed

    @classmethod
    def register_kind(cls, kind: str, handler) -> None:
        """Register ``handler(sim, config, result)`` for ``kind``."""
        cls._external_kinds[kind] = handler

    def run(self, config: ExperimentConfig) -> ExperimentResult:
        """Execute ``config`` and return its result record."""
        handler = getattr(self, "_run_" + config.kind.replace("-", "_"), None)
        if handler is None:
            handler = self._external_kinds.get(config.kind)
        if handler is None:
            raise ValueError(
                f"driver cannot run kind {config.kind!r}; external kinds "
                f"register via Driver.register_kind (the 'query' kind "
                f"lives in repro.workloads.suite)")
        result = ExperimentResult(name=config.name, kind=config.kind,
                                  parameters=dict(config.parameters))
        sim = CloudSim(seed=self.base_seed + config.seed,
                       use_vpc=config.parameters.get("vpc", False))
        handler(sim, config, result)
        result.cost_usd += self._estimate_cost(sim)
        return result

    def _estimate_cost(self, sim: CloudSim) -> float:
        """Post-hoc cost estimation from platform and storage statistics."""
        calculator = CostCalculator()
        for record in sim.platform.records:
            config = sim.platform.function(record.function)
            calculator.add_function_invocation(config.memory_bytes,
                                               record.duration)
        for instance in sim.fleet.instances:
            calculator.add_vm_time(instance.instance_type.name,
                                   instance.uptime(sim.env.now))
        for name, service in sim._services.items():
            pricing_name = "efs" if name.startswith("efs") else name
            calculator.add_storage_requests(pricing_name, service.stats)
        return calculator.cost.total

    # -- kind handlers -----------------------------------------------------------

    def _run_network_burst(self, sim, config, result) -> None:
        params = config.parameters
        first, second = run_function_network_burst(
            sim, duration=params.get("duration", 5.0),
            break_s=params.get("break_s", 3.0),
            direction=params.get("direction", "download"))
        result.add_series("first_burst", first.series.times(),
                          first.series.rates())
        result.add_series("second_burst", second.series.times(),
                          second.series.rates())
        profile = first.burst_profile()
        result.metrics.update({
            "burst_rate_gib_s": profile.burst_rate / units.GiB,
            "baseline_rate_mib_s": profile.baseline_rate / units.MiB,
            "bucket_mib": profile.bucket_bytes / units.MiB,
            "burst_duration_s": profile.burst_duration,
        })

    def _run_network_comparison(self, sim, config, result) -> None:
        instance = config.parameters["instance"]
        __, profile = run_ec2_network_profile(sim, instance)
        result.metrics.update({
            "burst_rate_gib_s": profile.burst_rate / units.GiB,
            "baseline_rate_gib_s": profile.baseline_rate / units.GiB,
            "bucket_gib": profile.bucket_bytes / units.GiB,
            "burst_duration_s": profile.burst_duration,
        })

    def _run_network_scaling(self, sim, config, result) -> None:
        series = run_network_scaling(
            sim, function_count=config.parameters["functions"],
            duration=config.parameters.get("duration", 2.0))
        result.add_series("aggregate", series.times(), series.rates())
        result.metrics["peak_gib_s"] = series.peak_rate() / units.GiB

    def _run_storage_throughput(self, sim, config, result) -> None:
        outcome = run_storage_throughput(
            sim, config.parameters["service"],
            clients=config.parameters["clients"],
            object_bytes=config.parameters["object_bytes"],
            direction=config.parameters.get("direction", "read"))
        result.metrics.update({
            "offered_gib_s": outcome.offered / units.GiB,
            "achieved_gib_s": outcome.achieved_gib_s,
        })

    def _run_storage_iops(self, sim, config, result) -> None:
        outcome = run_storage_iops(sim, config.parameters["service"],
                                   clients=config.parameters.get("clients", 128))
        result.metrics.update({
            "read_iops": outcome.achieved_read,
            "write_iops": outcome.achieved_write,
        })

    def _run_storage_latency(self, sim, config, result) -> None:
        outcome = run_storage_latency(
            sim, config.parameters["service"],
            request_count=config.parameters.get("requests", 1_000_000))
        for op in ("read", "write"):
            for stat, value in outcome[op].items():
                result.metrics[f"{op}_{stat}_ms"] = value * 1e3

    def _run_s3_iops_scaling(self, sim, config, result) -> None:
        trace = run_s3_iops_scaling(sim, **{
            key: config.parameters[key] for key in config.parameters
            if key in ("initial_instances", "final_instances",
                       "per_instance_iops", "step_duration_s")})
        result.add_series("successful", trace.times, trace.successful)
        result.add_series("failed", trace.times, trace.failed)
        result.metrics.update({
            "final_iops": trace.final_iops,
            "error_rate": trace.error_rate(),
            "final_partitions": trace.partitions[-1],
            "duration_min": trace.times[-1] / 60.0,
        })
        # Every fluid request was metered via the client hook.
        s3 = sim.s3()
        result.metrics["requests_millions"] = (
            s3.stats.total(RequestType.GET) / 1e6)

    def _run_s3_downscaling(self, sim, config, result) -> None:
        points = run_s3_downscaling(
            sim, probe_interval_s=config.parameters["probe_interval_s"],
            total_days=config.parameters.get("total_days", 6.0))
        result.add_series("iops", [p[0] / units.DAY for p in points],
                          [p[1] for p in points])
        result.metrics["final_iops"] = points[-1][1]

    def _run_function_startup(self, sim, config, result) -> None:
        startup = measure_startup_latency(
            sim, binary_bytes=config.parameters.get("binary_bytes",
                                                    units.MiB))
        result.metrics.update({
            "cold_median_ms": startup.cold_median * 1e3,
            "warm_median_ms": startup.warm_median * 1e3,
        })
        if config.parameters.get("measure_idle_lifetime"):
            lifetimes = measure_idle_lifetime(
                sim, gaps_s=[60.0, 300.0, 900.0, 3600.0])
            for gap, fraction in lifetimes.items():
                result.metrics[f"warm_after_{int(gap)}s"] = fraction

