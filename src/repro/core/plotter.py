"""Text-mode result rendering.

The original framework hands JSON results to a matplotlib plotter; in
this offline reproduction the plotter renders ASCII time series, bar
charts, and aligned tables — good enough to see the shapes the paper's
figures show (burst cliffs, staircases, crossovers) in a terminal or a
log file.
"""

from __future__ import annotations

from typing import Mapping, Sequence


def ascii_timeseries(points: Sequence[tuple[float, float]],
                     width: int = 72, height: int = 12,
                     title: str = "", y_label: str = "") -> str:
    """Render (x, y) points as an ASCII chart."""
    if not points:
        return f"{title}\n(no data)"
    xs = [p[0] for p in points]
    ys = [p[1] for p in points]
    y_max = max(ys) or 1.0
    y_min = min(0.0, min(ys))
    x_min, x_max = min(xs), max(xs)
    span_x = (x_max - x_min) or 1.0
    span_y = (y_max - y_min) or 1.0
    grid = [[" "] * width for _ in range(height)]
    for x, y in points:
        col = int((x - x_min) / span_x * (width - 1))
        row = int((y - y_min) / span_y * (height - 1))
        grid[height - 1 - row][col] = "*"
    lines = []
    if title:
        lines.append(title)
    for i, row in enumerate(grid):
        value = y_max - i * span_y / (height - 1)
        lines.append(f"{value:12.3g} |{''.join(row)}")
    lines.append(" " * 13 + "+" + "-" * width)
    lines.append(f"{'':13}{x_min:<12.4g}{'':{max(0, width - 24)}}{x_max:>12.4g}")
    if y_label:
        lines.append(f"(y: {y_label})")
    return "\n".join(lines)


def ascii_bars(values: Mapping[str, float], width: int = 50,
               title: str = "", unit: str = "") -> str:
    """Render a mapping as horizontal ASCII bars."""
    if not values:
        return f"{title}\n(no data)"
    peak = max(abs(v) for v in values.values()) or 1.0
    label_width = max(len(str(k)) for k in values)
    lines = [title] if title else []
    for key, value in values.items():
        bar = "#" * max(1, int(abs(value) / peak * width)) if value else ""
        lines.append(f"{key:>{label_width}} | {bar} {value:,.4g}{unit}")
    return "\n".join(lines)


def format_table(headers: Sequence[str], rows: Sequence[Sequence],
                 title: str = "") -> str:
    """Render rows as an aligned text table (paper-style)."""
    columns = [[str(h)] for h in headers]
    for row in rows:
        if len(row) != len(headers):
            raise ValueError(f"row {row!r} does not match headers {headers!r}")
        for i, cell in enumerate(row):
            if isinstance(cell, float):
                columns[i].append(f"{cell:,.4g}")
            else:
                columns[i].append(str(cell))
    widths = [max(len(cell) for cell in column) for column in columns]
    lines = [title] if title else []
    header_line = "  ".join(h.ljust(w) for h, w in
                            zip([c[0] for c in columns], widths))
    lines.append(header_line)
    lines.append("-" * len(header_line))
    for r in range(1, len(columns[0])):
        lines.append("  ".join(columns[i][r].rjust(widths[i])
                               for i in range(len(columns))))
    return "\n".join(lines)
