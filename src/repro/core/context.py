"""One-stop construction of a simulated AWS environment.

Bundles the discrete-event environment, network fabric, RNG streams,
FaaS platform, EC2 fleet, and storage services behind a single object so
experiment drivers and examples do not repeat the wiring.
"""

from __future__ import annotations

from typing import Optional

from repro import units
from repro.faas import LambdaPlatform
from repro.iaas import Ec2Fleet
from repro.network import Fabric
from repro.network.fabric import FluidLink
from repro.sim import Environment, RandomStreams
from repro.storage import DynamoDB, EFS, S3Express, S3Standard
from repro.telemetry import get_recorder

#: The hard aggregate-throughput ceiling observed for customer-owned VPCs
#: within a single AZ (Section 4.2.2).
VPC_THROUGHPUT_CAP = 20 * units.GiB


class CloudSim:
    """A simulated AWS region with compute and storage services."""

    def __init__(self, seed: int = 0, region: str = "us-east-1",
                 account_quota: int = 10_000,
                 use_vpc: bool = False) -> None:
        self.env = Environment()
        recorder = get_recorder()
        if recorder.enabled:
            recorder.attach_kernel(self.env)
        self.fabric = Fabric(self.env)
        self.rng = RandomStreams(seed=seed)
        self.region = region
        self.vpc_link: Optional[FluidLink] = None
        if use_vpc:
            self.vpc_link = self.fabric.link(VPC_THROUGHPUT_CAP, name="vpc")
        self.platform = LambdaPlatform(
            self.env, self.fabric, self.rng, region=region,
            account_quota=account_quota, vpc_link=self.vpc_link)
        self.fleet = Ec2Fleet(self.env, self.fabric, self.rng,
                              vpc_link=self.vpc_link)
        self._services: dict[str, object] = {}

    # -- storage services, created lazily and cached ---------------------------

    def s3(self) -> S3Standard:
        """The S3 Standard bucket of this simulation."""
        if "s3-standard" not in self._services:
            self._services["s3-standard"] = S3Standard(
                self.env, self.fabric, self.rng)
        return self._services["s3-standard"]

    def s3_express(self) -> S3Express:
        """The S3 Express One Zone bucket."""
        if "s3-express" not in self._services:
            self._services["s3-express"] = S3Express(
                self.env, self.fabric, self.rng)
        return self._services["s3-express"]

    def dynamodb(self) -> DynamoDB:
        """The on-demand DynamoDB table."""
        if "dynamodb" not in self._services:
            self._services["dynamodb"] = DynamoDB(
                self.env, self.fabric, self.rng)
        return self._services["dynamodb"]

    def efs(self, filesystem_count: int = 1) -> EFS:
        """An EFS deployment sharded over ``filesystem_count`` filesystems."""
        key = f"efs-{filesystem_count}"
        if key not in self._services:
            self._services[key] = EFS(self.env, self.fabric, self.rng,
                                      filesystem_count=filesystem_count)
        return self._services[key]

    def service(self, name: str):
        """Storage service by catalog name ('s3-standard', 'efs-2', ...)."""
        if name == "s3-standard":
            return self.s3()
        if name == "s3-express":
            return self.s3_express()
        if name == "dynamodb":
            return self.dynamodb()
        if name.startswith("efs"):
            count = int(name.split("-")[1]) if "-" in name else 1
            return self.efs(count)
        raise KeyError(f"unknown storage service {name!r}")

    # -- execution helpers -------------------------------------------------------

    def run(self, process_or_generator):
        """Run a process (or generator) to completion; return its value."""
        if hasattr(process_or_generator, "send"):
            process = self.env.process(process_or_generator)
        else:
            process = process_or_generator
        self.env.run(until=process)
        return process.value
