"""Experiment configuration records (Table 3).

A configuration names the system under test, the driver kind, the
function/workload to run, and the experiment parameters. Configurations
serialize to/from JSON so experiment suites are data, not code.
"""

from __future__ import annotations

import json
from dataclasses import dataclass, field
from typing import Any

from repro.telemetry.export import canonical_json

#: Known experiment kinds, mirroring Table 3's driver column.
EXPERIMENT_KINDS = (
    "network-burst",        # Figure 5: single-function burst profile
    "network-comparison",   # Figure 6: EC2 vs Lambda bursting
    "network-scaling",      # Figure 7: aggregate throughput, VPC on/off
    "storage-throughput",   # Figure 8
    "storage-iops",         # Figure 9
    "storage-latency",      # Figure 10
    "s3-iops-scaling",      # Figure 11
    "s3-downscaling",       # Figure 13
    "function-startup",     # Table 3: startup latency / idle lifetime
    "query",                # Figures 14, 15; Tables 5, 6
)


@dataclass
class ExperimentConfig:
    """One experiment: kind plus free-form parameters."""

    name: str
    kind: str
    parameters: dict[str, Any] = field(default_factory=dict)
    repetitions: int = 1
    seed: int = 0

    def __post_init__(self) -> None:
        if self.kind not in EXPERIMENT_KINDS:
            raise ValueError(f"unknown experiment kind {self.kind!r}; "
                             f"known: {EXPERIMENT_KINDS}")
        if self.repetitions < 1:
            raise ValueError("repetitions must be >= 1")

    def to_json(self) -> str:
        """Serialize to byte-stable JSON (sorted keys, indent=2)."""
        return canonical_json({
            "name": self.name, "kind": self.kind,
            "parameters": self.parameters,
            "repetitions": self.repetitions, "seed": self.seed,
        })

    @classmethod
    def from_json(cls, raw: str) -> "ExperimentConfig":
        """Parse a JSON configuration."""
        data = json.loads(raw)
        return cls(name=data["name"], kind=data["kind"],
                   parameters=data.get("parameters", {}),
                   repetitions=data.get("repetitions", 1),
                   seed=data.get("seed", 0))
