"""The Skyrise evaluation framework (Section 3).

The framework automates experiment setup, execution, and result
processing across two levels of the stack:

* **resource level** — microbenchmarks for compute, network, and storage
  (:mod:`repro.core.micro`): the network I/O, storage I/O, and minimal
  functions of Table 3;
* **application level** — full queries on the integrated Skyrise query
  engine (:mod:`repro.engine`), driven by :mod:`repro.workloads`.

Experiments are described by :class:`~repro.core.config.ExperimentConfig`
objects, executed by the :class:`~repro.core.driver.Driver`, and produce
:class:`~repro.core.results.ExperimentResult` records (JSON-serializable,
with cost estimates) that the text plotter renders.
"""

from repro.core.context import CloudSim
from repro.core.config import ExperimentConfig
from repro.core.driver import Driver
from repro.core.results import ExperimentResult
from repro.core.plotter import ascii_bars, ascii_timeseries, format_table

__all__ = [
    "CloudSim",
    "Driver",
    "ExperimentConfig",
    "ExperimentResult",
    "ascii_bars",
    "ascii_timeseries",
    "format_table",
]
