"""Experiment results: metrics, series, cost — JSON persistable.

Mirrors the paper's flow: "the driver aggregates these results and
estimates the experiment cost using the AWS price list service ...
finally, the driver stores the results in a JSON file and hands them to
a plotter" (Section 3.1).
"""

from __future__ import annotations

import json
from dataclasses import dataclass, field
from pathlib import Path
from typing import Any

from repro.telemetry.export import canonical_json


@dataclass
class ExperimentResult:
    """Outcome of one experiment run."""

    name: str
    kind: str
    parameters: dict[str, Any] = field(default_factory=dict)
    #: Scalar result metrics (latencies, throughputs, counts).
    metrics: dict[str, float] = field(default_factory=dict)
    #: Named time/parameter series: label -> list of (x, y) pairs.
    series: dict[str, list[tuple[float, float]]] = field(default_factory=dict)
    #: Estimated experiment cost in dollars.
    cost_usd: float = 0.0

    def add_series(self, label: str, xs, ys) -> None:
        """Record a series from parallel x/y sequences."""
        self.series[label] = [(float(x), float(y)) for x, y in zip(xs, ys)]

    def to_dict(self) -> dict:
        return {
            "name": self.name,
            "kind": self.kind,
            "parameters": self.parameters,
            "metrics": self.metrics,
            "series": {label: [[x, y] for x, y in points]
                       for label, points in self.series.items()},
            "cost_usd": self.cost_usd,
        }

    def save(self, path: str | Path) -> Path:
        """Write the result as byte-stable pretty-printed JSON."""
        path = Path(path)
        path.parent.mkdir(parents=True, exist_ok=True)
        path.write_text(canonical_json(self.to_dict()))
        return path

    @classmethod
    def load(cls, path: str | Path) -> "ExperimentResult":
        """Read a result back from JSON."""
        data = json.loads(Path(path).read_text())
        result = cls(name=data["name"], kind=data["kind"],
                     parameters=data["parameters"], metrics=data["metrics"],
                     cost_usd=data["cost_usd"])
        for label, points in data["series"].items():
            result.series[label] = [(float(x), float(y)) for x, y in points]
        return result
