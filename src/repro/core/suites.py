"""Predefined experiment suites: the paper's evaluation as data.

The framework "enables the reproduction of our experimental results"
(Section 3) — this module encodes the experiment configurations behind
each figure so that the whole evaluation is a list of
:class:`~repro.core.config.ExperimentConfig` records the
:class:`~repro.core.driver.Driver` can execute. The `benchmarks/`
directory holds the assertion-carrying versions; these configs power
ad-hoc runs and the ``run_full_evaluation`` example.
"""

from __future__ import annotations

from repro import units
from repro.core.config import ExperimentConfig


def network_suite() -> list[ExperimentConfig]:
    """Section 4.2: network bursting and scaling experiments."""
    configs = [
        ExperimentConfig(
            name="fig5-function-burst", kind="network-burst",
            parameters={"duration": 5.0, "break_s": 3.0,
                        "direction": "download"}),
        ExperimentConfig(
            name="fig5-function-burst-out", kind="network-burst",
            parameters={"duration": 5.0, "break_s": 3.0,
                        "direction": "upload"}),
    ]
    for instance in ("c6g.medium", "c6g.xlarge", "c6g.4xlarge"):
        configs.append(ExperimentConfig(
            name=f"fig6-{instance}", kind="network-comparison",
            parameters={"instance": instance}))
    for count in (32, 64, 128):
        configs.append(ExperimentConfig(
            name=f"fig7-{count}-functions", kind="network-scaling",
            parameters={"functions": count, "duration": 1.0}))
    configs.append(ExperimentConfig(
        name="fig7-128-functions-vpc", kind="network-scaling",
        parameters={"functions": 128, "duration": 1.0, "vpc": True}))
    return configs


def storage_suite() -> list[ExperimentConfig]:
    """Sections 4.3-4.4: storage comparison and S3 scaling."""
    configs = []
    sizes = {"s3-standard": 64 * units.MiB, "s3-express": 64 * units.MiB,
             "dynamodb": 400 * units.KiB, "efs-1": 4 * units.MiB}
    for service, object_bytes in sizes.items():
        configs.append(ExperimentConfig(
            name=f"fig8-{service}", kind="storage-throughput",
            parameters={"service": service, "clients": 128,
                        "object_bytes": object_bytes}))
        configs.append(ExperimentConfig(
            name=f"fig9-{service}", kind="storage-iops",
            parameters={"service": service}))
        configs.append(ExperimentConfig(
            name=f"fig10-{service}", kind="storage-latency",
            parameters={"service": service, "requests": 1_000_000}))
    configs.append(ExperimentConfig(
        name="fig11-s3-scaling", kind="s3-iops-scaling", parameters={}))
    configs.append(ExperimentConfig(
        name="fig13-downscaling-hourly", kind="s3-downscaling",
        parameters={"probe_interval_s": units.HOUR}))
    configs.append(ExperimentConfig(
        name="fig13-downscaling-daily", kind="s3-downscaling",
        parameters={"probe_interval_s": units.DAY}))
    return configs


def query_suite() -> list[ExperimentConfig]:
    """Sections 4.5-4.6: application-level experiments (scaled down)."""
    configs = []
    for query in ("tpch-q1", "tpch-q6", "tpch-q12", "tpcxbb-q3"):
        configs.append(ExperimentConfig(
            name=f"query-{query}", kind="query",
            parameters={"query": query, "lineitem_partitions": 6,
                        "orders_partitions": 3,
                        "clickstreams_partitions": 4}))
    configs.append(ExperimentConfig(
        name="query-q6-iaas", kind="query",
        parameters={"query": "tpch-q6", "backend": "iaas",
                    "lineitem_partitions": 6, "vm_count": 8}))
    return configs


def startup_suite() -> list[ExperimentConfig]:
    """Table 3 resource metrics: startup latency and idle lifetime."""
    return [
        ExperimentConfig(
            name="startup-small-binary", kind="function-startup",
            parameters={"binary_bytes": 1 * units.MiB}),
        ExperimentConfig(
            name="startup-large-binary", kind="function-startup",
            parameters={"binary_bytes": 50 * units.MiB}),
        ExperimentConfig(
            name="idle-lifetime", kind="function-startup",
            parameters={"binary_bytes": 1 * units.MiB,
                        "measure_idle_lifetime": True}),
    ]


def full_evaluation() -> list[ExperimentConfig]:
    """Every suite, in the paper's section order."""
    return (network_suite() + storage_suite() + query_suite()
            + startup_suite())
