"""Network I/O microbenchmark (Figures 5-7).

The measurement function wraps the iPerf client: it sends or receives
randomly generated data against iPerf servers deployed on high-bandwidth
EC2 instances for a pre-specified time. Run on the FaaS platform, the
function exercises the sandbox's token-bucket network budget; run on EC2,
the instance's continuous-refill bucket.
"""

from __future__ import annotations

from repro import units
from repro.core.context import CloudSim
from repro.faas.function import FunctionConfig
from repro.network import IperfClient, IperfServer, ThroughputProbe
from repro.network.iperf import BurstProfile, IperfResult, estimate_burst_profile

#: iPerf servers run on network-optimized instances so they never
#: bottleneck; one server serves up to this many clients (Section 4.2).
CLIENTS_PER_SERVER = 10
SERVER_CAPACITY = 100 * units.Gbps


def _deploy_network_function(sim: CloudSim, server: IperfServer,
                             sample_interval: float) -> None:
    """Deploy the network I/O measurement function binary."""

    def network_io_handler(context, payload):
        client = IperfClient(context.env, sim.fabric, context.endpoint,
                             server)
        result = yield from client.run(payload["duration"],
                                       direction=payload["direction"],
                                       sample_interval=sample_interval)
        return result

    sim.platform.deploy(FunctionConfig(
        name="network-io", handler=network_io_handler,
        memory_bytes=7_076 * units.MiB, binary_bytes=9 * units.MiB))


def run_function_network_burst(sim: CloudSim, duration: float = 5.0,
                               break_s: float = 3.0,
                               direction: str = "download",
                               sample_interval: float = 0.02):
    """Figure 5: function network throughput with a refill break.

    Runs the network I/O function for ``duration`` seconds twice, with a
    ``break_s`` pause in between (warm sandbox reuse, so the second run
    sees the half-refilled bucket). Returns both iPerf results.
    """
    server = IperfServer(sim.env, sim.fabric, capacity=SERVER_CAPACITY)
    _deploy_network_function(sim, server, sample_interval)

    def scenario(env):
        first = yield from sim.platform.invoke(
            "network-io", {"duration": duration, "direction": direction})
        yield env.timeout(break_s)
        second = yield from sim.platform.invoke(
            "network-io", {"duration": duration, "direction": direction})
        return first.response, second.response

    first, second = sim.run(scenario(sim.env))
    return first, second


def run_ec2_network_profile(sim: CloudSim, instance_name: str,
                            max_duration: float = 3_600.0,
                            sample_interval: float = 1.0) -> tuple[
                                IperfResult, BurstProfile]:
    """Figure 6 (EC2 side): burst/baseline/bucket of one instance type.

    Runs an open flow long enough to drain the token bucket into the
    baseline regime; measurement duration adapts to the instance size
    like the paper's 3-45 minute runs.
    """
    instances = sim.run(sim.fleet.provision(instance_name, count=1))
    instance = instances[0]
    server = IperfServer(sim.env, sim.fabric, capacity=SERVER_CAPACITY)
    shaper = instance.endpoint.ingress
    # Run until the bucket would be empty at burst rate, plus enough
    # slack that the final quarter of the series (the baseline estimation
    # window) lies entirely in the post-burst regime.
    net_drain = max(shaper.burst_rate - shaper.refill_rate, 1.0)
    drain_time = shaper.capacity / net_drain
    duration = min(max_duration, 1.5 * drain_time + 120.0)
    client = IperfClient(sim.env, sim.fabric, instance.endpoint, server)
    result = sim.run(client.run(duration, direction="download",
                                sample_interval=sample_interval))
    return result, result.burst_profile()


def lambda_network_profile(sim: CloudSim,
                           duration: float = 8.0) -> BurstProfile:
    """Figure 6 (Lambda side): the function burst profile."""
    first, _ = run_function_network_burst(sim, duration=duration,
                                          break_s=1.0)
    return estimate_burst_profile(first.series)


def run_network_scaling(sim: CloudSim, function_count: int,
                        duration: float = 2.0,
                        sample_interval: float = 0.02):
    """Figure 7: aggregate throughput of concurrently measuring functions.

    Maps ``function_count`` network I/O functions onto a cluster of iPerf
    servers (one per 10 clients). Build ``sim`` with ``use_vpc=True`` for
    the customer-VPC variant. Returns the aggregate probe series.
    """
    if function_count <= 0:
        raise ValueError("function_count must be positive")
    servers = [IperfServer(sim.env, sim.fabric, name=f"iperf-{i}",
                           capacity=SERVER_CAPACITY)
               for i in range((function_count + CLIENTS_PER_SERVER - 1)
                              // CLIENTS_PER_SERVER)]
    flows = []

    def client_handler(context, payload):
        server = servers[payload["server"]]
        flow = sim.fabric.open_flow(server.endpoint, context.endpoint,
                                    server.nic)
        flows.append(flow)
        yield context.env.timeout(payload["duration"])
        flow.stop()
        return flow.transferred

    sim.platform.deploy(FunctionConfig(
        name="network-io-scale", handler=client_handler,
        memory_bytes=7_076 * units.MiB, binary_bytes=9 * units.MiB))

    def scenario(env):
        probe = ThroughputProbe(env, sim.fabric, lambda: flows,
                                interval=sample_interval,
                                duration=duration + 1.0)
        invocations = [
            env.process(sim.platform.invoke(
                "network-io-scale",
                {"duration": duration, "server": i % len(servers)}))
            for i in range(function_count)]
        for invocation in invocations:
            yield invocation
        return probe.stop()

    return sim.run(scenario(sim.env))
