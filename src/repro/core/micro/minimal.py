"""Minimal (no-op) function: startup and idle-lifetime experiments.

The minimal binary links no libraries — only random BLOBs of
pre-specified sizes — so its invocations isolate FaaS platform overheads
(Table 3: startup latency, idle lifetime).
"""

from __future__ import annotations

from dataclasses import dataclass

from repro import units
from repro.core.context import CloudSim
from repro.faas.function import FunctionConfig


def _deploy_minimal(sim: CloudSim, binary_bytes: float) -> str:
    name = f"minimal-{int(binary_bytes)}"

    def minimal_handler(context, payload):
        yield context.env.timeout(1e-4)  # the no-op body
        return payload

    sim.platform.deploy(FunctionConfig(
        name=name, handler=minimal_handler,
        memory_bytes=128 * units.MiB, binary_bytes=binary_bytes))
    return name


@dataclass
class StartupResult:
    """Cold vs warm startup latencies for one binary size."""

    binary_bytes: float
    cold_latencies: list[float]
    warm_latencies: list[float]

    @property
    def cold_median(self) -> float:
        """Median coldstart latency (seconds)."""
        ordered = sorted(self.cold_latencies)
        return ordered[len(ordered) // 2]

    @property
    def warm_median(self) -> float:
        """Median warmstart latency (seconds)."""
        ordered = sorted(self.warm_latencies)
        return ordered[len(ordered) // 2]


def measure_startup_latency(sim: CloudSim, binary_bytes: float = 1 * units.MiB,
                            repetitions: int = 20) -> StartupResult:
    """Measure cold and warm startup latency of the minimal function.

    Coldstarts are forced by invoking the function concurrently
    (spreading across fresh sandboxes); warmstarts reuse the pool.
    """
    name = _deploy_minimal(sim, binary_bytes)
    cold: list[float] = []
    warm: list[float] = []

    def scenario(env):
        # Concurrent burst: every invocation needs its own (cold) sandbox.
        burst = [env.process(sim.platform.invoke(name))
                 for _ in range(repetitions)]
        for process in burst:
            record = yield process
            cold.append(record.init_duration)
        # Back-to-back reuse: warm.
        for _ in range(repetitions):
            record = yield from sim.platform.invoke(name)
            warm.append(record.init_duration)

    sim.run(scenario(sim.env))
    return StartupResult(binary_bytes=binary_bytes, cold_latencies=cold,
                         warm_latencies=warm)


def measure_idle_lifetime(sim: CloudSim, gaps_s: list[float],
                          probes_per_gap: int = 10) -> dict[float, float]:
    """Probe how often a sandbox is still warm after each idle gap.

    Returns gap -> fraction of probes that found a warm sandbox. The
    crossover locates the platform's idle reclamation horizon.
    """
    name = _deploy_minimal(sim, 1 * units.MiB)
    warm_fraction: dict[float, float] = {}

    def scenario(env):
        for gap in gaps_s:
            hits = 0
            for _ in range(probes_per_gap):
                yield from sim.platform.invoke(name)  # ensure a sandbox
                yield env.timeout(gap)
                record = yield from sim.platform.invoke(name)
                if not record.cold:
                    hits += 1
            warm_fraction[gap] = hits / probes_per_gap

    sim.run(scenario(sim.env))
    return warm_fraction
