"""Resource-level microbenchmarks (Table 3).

Three cloud-function binaries drive the resource experiments:

* **network I/O** (:mod:`repro.core.micro.network`) — an iPerf3-based
  measurement function; Figures 5-7;
* **storage I/O** (:mod:`repro.core.micro.storage_io`) — reads/writes
  files of fixed size and number against a storage service; Figures 8-13;
* **minimal** (:mod:`repro.core.micro.minimal`) — a no-op binary with
  configurable BLOB size for startup/idle-lifetime experiments.
"""

from repro.core.micro.network import (
    run_ec2_network_profile,
    run_function_network_burst,
    run_network_scaling,
)
from repro.core.micro.storage_io import (
    run_s3_downscaling,
    run_s3_iops_scaling,
    run_storage_iops,
    run_storage_latency,
    run_storage_throughput,
)
from repro.core.micro.minimal import (
    measure_idle_lifetime,
    measure_startup_latency,
)

__all__ = [
    "measure_idle_lifetime",
    "measure_startup_latency",
    "run_ec2_network_profile",
    "run_function_network_burst",
    "run_network_scaling",
    "run_s3_downscaling",
    "run_s3_iops_scaling",
    "run_storage_iops",
    "run_storage_latency",
    "run_storage_throughput",
]
