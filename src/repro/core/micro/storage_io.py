"""Storage I/O microbenchmark (Figures 8-13).

The storage I/O function writes or reads randomly generated files of
fixed size and number against a storage service. Three modes mirror the
paper's experiments:

* **throughput** — client VMs with fixed-size thread pools issue large
  requests via the asynchronous APIs; the measured aggregate is shaped by
  per-thread pipelining (latency + per-stream bandwidth), client NICs,
  and the service's bandwidth ceilings (Figure 8);
* **IOPS** — a stepped fluid-load driver offers an aggregate request rate
  and records what each service admits (Figures 9, 11, 13);
* **latency** — a million synchronous 1 KiB requests sampled from each
  service's calibrated distribution (Figure 10).
"""

from __future__ import annotations

import math
from dataclasses import dataclass, field

from repro import units
from repro.core.context import CloudSim
from repro.storage.base import RequestType, StorageService
from repro.storage.latency import percentile_summary

#: Client VM fleet of the storage experiments: c6gn.2xlarge, 32 threads.
CLIENT_THREADS = 32

#: Effective single-stream bandwidth to cloud storage (per thread).
PER_STREAM_BANDWIDTH = 70 * units.MiB


@dataclass
class ThroughputResult:
    """One cell of Figure 8."""

    service: str
    clients: int
    object_bytes: float
    direction: str
    offered: float
    achieved: float

    @property
    def achieved_gib_s(self) -> float:
        """Aggregate throughput in GiB/s."""
        return self.achieved / units.GiB


def _per_client_offer(service: StorageService, object_bytes: float,
                      direction: str) -> float:
    """Offered bytes/second from one client VM's thread pool.

    Each thread pipelines requests: one request takes (first-byte latency
    + transfer at per-stream bandwidth), so a thread sustains
    ``size / (latency + size/stream_bw)`` — the reason larger objects get
    closer to line rate and high-latency services lose throughput.
    """
    model = (service.read_latency if direction == "read"
             else service.write_latency)
    per_request = model.median + object_bytes / PER_STREAM_BANDWIDTH
    return CLIENT_THREADS * object_bytes / per_request


def run_storage_throughput(sim: CloudSim, service_name: str,
                           clients: int, object_bytes: float,
                           direction: str = "read") -> ThroughputResult:
    """Figure 8: aggregate throughput for a client-count/service cell."""
    if direction not in ("read", "write"):
        raise ValueError(f"direction must be read/write, got {direction!r}")
    service = sim.service(service_name)
    offered = clients * _per_client_offer(service, object_bytes, direction)
    # Service-side ceilings: bandwidth link and request-rate admission.
    link = service.read_link if direction == "read" else service.write_link
    achieved = offered
    if link is not None:
        achieved = min(achieved, link.capacity)
    iops_needed = achieved / object_bytes
    if direction == "read":
        admitted = service.offer_load(iops_needed, 0.0, elapsed=60.0)
        achieved = min(achieved, admitted.accepted_read * object_bytes)
    else:
        admitted = service.offer_load(0.0, iops_needed, elapsed=60.0)
        achieved = min(achieved, admitted.accepted_write * object_bytes)
    return ThroughputResult(service=service_name, clients=clients,
                            object_bytes=object_bytes, direction=direction,
                            offered=offered, achieved=achieved)


@dataclass
class IopsResult:
    """One bar of Figure 9."""

    service: str
    offered_read: float
    offered_write: float
    achieved_read: float
    achieved_write: float


def run_storage_iops(sim: CloudSim, service_name: str,
                     clients: int = 128, threads: int = CLIENT_THREADS,
                     per_thread_iops: float = 65.0,
                     repetitions: int = 3,
                     rep_duration_s: float = 120.0,
                     rep_spacing_s: float = 12.0 * 3_600.0) -> IopsResult:
    """Figure 9: achievable request rates against fresh containers.

    Mirrors the paper's protocol: short repetitions (<5 minutes) spaced
    more than 12 hours apart, so storage-side scaling and caching effects
    do not contaminate the measurement. The median repetition is
    reported.
    """
    service = sim.service(service_name)
    offered = clients * threads * per_thread_iops
    reads: list[float] = []
    writes: list[float] = []
    for repetition in range(repetitions):
        now = repetition * rep_spacing_s
        read = service.offer_load(offered, 0.0, elapsed=rep_duration_s,
                                  now=now)
        write = service.offer_load(0.0, offered, elapsed=rep_duration_s,
                                   now=now)
        reads.append(read.accepted_read)
        writes.append(write.accepted_write)
    reads.sort()
    writes.sort()
    return IopsResult(service=service_name,
                      offered_read=offered, offered_write=offered,
                      achieved_read=reads[len(reads) // 2],
                      achieved_write=writes[len(writes) // 2])


def run_storage_latency(sim: CloudSim, service_name: str,
                        request_count: int = 1_000_000) -> dict:
    """Figure 10: latency distributions over a million 1 KiB requests."""
    service = sim.service(service_name)
    reads = service.sample_latencies(RequestType.GET, request_count)
    writes = service.sample_latencies(RequestType.PUT, request_count)
    return {
        "service": service_name,
        "read": percentile_summary(reads),
        "write": percentile_summary(writes),
        "read_samples": reads,
        "write_samples": writes,
    }


@dataclass
class ScalingTrace:
    """Time series of the S3 IOPS scaling experiment (Figure 11)."""

    times: list[float] = field(default_factory=list)
    successful: list[float] = field(default_factory=list)
    failed: list[float] = field(default_factory=list)
    partitions: list[int] = field(default_factory=list)
    #: Nominal offered rate (all clients, ignoring backoff state).
    nominal: list[float] = field(default_factory=list)

    @property
    def final_iops(self) -> float:
        """Peak successful IOPS over the final tenth of the run.

        Robust against landing on a client-backoff dip (which the paper
        attributes to the client configuration, not S3).
        """
        if not self.successful:
            return 0.0
        tail = self.successful[-max(1, len(self.successful) // 10):]
        return max(tail)

    def error_rate(self) -> float:
        """Overall fraction of failed operations."""
        total_ok = sum(self.successful)
        total_fail = sum(self.failed)
        denominator = total_ok + total_fail
        return total_fail / denominator if denominator else 0.0


@dataclass
class _SwarmClient:
    """One load-generating instance with exponential backoff state."""

    rate: float
    backoff_until: float = 0.0
    backoff_level: int = 0


def run_s3_iops_scaling(sim: CloudSim,
                        initial_instances: int = 20,
                        final_instances: int = 100,
                        instance_step: int = 2,
                        per_instance_iops: float = 300.0,
                        step_duration_s: float = 39.0,
                        hold_final_s: float = 300.0,
                        tick_s: float = 3.0,
                        with_backoff: bool = True) -> ScalingTrace:
    """Figure 11: controlled ramp of read load against a fresh bucket.

    Clients ramp from ``initial_instances`` to ``final_instances`` in
    increments; with ``with_backoff`` (the paper's client configuration),
    clients retry rejected requests with exponential backoff. A client
    whose requests are repetitively rejected escalates its backoff level
    — it only decays one step per clean tick — and turns into a
    straggler, producing the throughput dips the paper attributes to the
    client configuration rather than S3. ``with_backoff=False`` retries
    everything immediately (the ablation).
    """
    s3 = sim.s3()
    rng = sim.rng.stream("s3-scaling-swarm")
    trace = ScalingTrace()
    clients = [_SwarmClient(rate=per_instance_iops)
               for _ in range(initial_instances)]
    now = 0.0
    pending_retries = 0.0
    steps = math.ceil((final_instances - initial_instances) / instance_step) + 1
    for step in range(steps):
        hold = hold_final_s if step == steps - 1 else 0.0
        step_end = now + step_duration_s + hold
        while now < step_end:
            active = [c for c in clients if c.backoff_until <= now]
            offered = sum(c.rate for c in active) + pending_retries
            admitted = s3.offer_load(offered, 0.0, elapsed=tick_s, now=now)
            ok = admitted.accepted_read
            rejected = admitted.rejected_read
            if with_backoff:
                # Rejected requests wait out their clients' backoff.
                pending_retries = 0.0
            else:
                # Immediate retries re-enter next tick, bounded by the
                # clients' outstanding-request windows (one retry in
                # flight per thread slot).
                pending_retries = min(rejected,
                                      sum(c.rate for c in active))
            # Rejections are not spread evenly: unlucky clients see their
            # requests repeatedly rejected and back off exponentially,
            # recovering only gradually. Occasionally S3 throttles in a
            # burst that hits a large share of the swarm at once — these
            # waves are what produce the handful of deep throughput dips
            # the paper observes (and attributes to the clients).
            if with_backoff and offered > 0 and rejected > 0:
                rejection_fraction = rejected / offered
                wave = rng.random() < 0.015
                for client in active:
                    hit = rng.random() < rejection_fraction * 0.15
                    if wave and rng.random() < 0.5:
                        hit = True
                        client.backoff_level = min(client.backoff_level + 2, 6)
                    if hit:
                        client.backoff_level = min(client.backoff_level + 1, 6)
                        client.backoff_until = now + tick_s * (
                            2 ** client.backoff_level)
                    elif client.backoff_level > 0:
                        client.backoff_level -= 1
            elif with_backoff:
                for client in active:
                    if client.backoff_level > 0:
                        client.backoff_level -= 1
            trace.times.append(now)
            trace.successful.append(ok)
            trace.failed.append(rejected)
            trace.partitions.append(s3.partition_count)
            trace.nominal.append(len(clients) * per_instance_iops)
            now += tick_s
        for _ in range(instance_step):
            if len(clients) < final_instances:
                clients.append(_SwarmClient(rate=per_instance_iops))
    return trace


def run_s3_downscaling(sim: CloudSim, probe_interval_s: float,
                       total_days: float = 6.0,
                       probe_iops: float = 30_000.0,
                       probe_duration_s: float = 30.0,
                       repetitions: int = 3) -> list[tuple[float, float]]:
    """Figure 13: probe a scaled bucket until IOPS return to one partition.

    Returns (time, max IOPS over the repetitions) per probe interval. The
    probes are short and light enough not to keep the bucket warm (the
    paper notes the measurement/accuracy tradeoff).
    """
    s3 = sim.s3()
    s3.prewarm(5)
    points: list[tuple[float, float]] = []
    now = 0.0
    while now <= total_days * units.DAY:
        best = 0.0
        for repetition in range(repetitions):
            result = s3.offer_load(probe_iops, 0.0,
                                   elapsed=probe_duration_s,
                                   now=now + repetition * probe_duration_s)
            best = max(best, result.accepted_read)
        points.append((now, best))
        now += probe_interval_s
    return points
