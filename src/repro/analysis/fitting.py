"""Polynomial fitting and extrapolation (Figure 12).

The paper measures S3 IOPS scaling up to five prefix partitions and
extrapolates the time and request budget needed for up to 20 partitions
(110K IOPS) via polynomial fits of the measured (partitions, time) and
(partitions, cost) points.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Sequence

import numpy as np


@dataclass
class PolynomialFit:
    """A fitted polynomial with convenience evaluation."""

    coefficients: np.ndarray
    degree: int

    def __call__(self, x: float | np.ndarray) -> float | np.ndarray:
        """Evaluate the polynomial."""
        result = np.polyval(self.coefficients, x)
        if np.isscalar(x):
            return float(result)
        return result

    def residuals(self, xs: Sequence[float],
                  ys: Sequence[float]) -> np.ndarray:
        """Fit residuals over the given points."""
        return np.asarray(ys, dtype=np.float64) - np.polyval(
            self.coefficients, np.asarray(xs, dtype=np.float64))


def fit_polynomial(xs: Sequence[float], ys: Sequence[float],
                   degree: int = 2) -> PolynomialFit:
    """Least-squares polynomial fit of the given degree."""
    xs = np.asarray(list(xs), dtype=np.float64)
    ys = np.asarray(list(ys), dtype=np.float64)
    if len(xs) != len(ys):
        raise ValueError("xs and ys must be equally long")
    if len(xs) <= degree:
        raise ValueError(
            f"need more than {degree} points for a degree-{degree} fit")
    coefficients = np.polyfit(xs, ys, degree)
    return PolynomialFit(coefficients=coefficients, degree=degree)


def extrapolate_scaling(measured_partitions: Sequence[float],
                        measured_time_s: Sequence[float],
                        measured_cost_usd: Sequence[float],
                        target_partitions: Sequence[int],
                        degree: int = 2) -> list[dict]:
    """Figure 12: extrapolate S3 scaling time and budget.

    Fits polynomials over the measured points and evaluates them at the
    target partition counts; each result row carries the partition count,
    the implied IOPS (5.5K per partition), and the extrapolated time and
    cost.
    """
    time_fit = fit_polynomial(measured_partitions, measured_time_s, degree)
    cost_fit = fit_polynomial(measured_partitions, measured_cost_usd, degree)
    rows = []
    for partitions in target_partitions:
        rows.append({
            "partitions": int(partitions),
            "iops": 5_500.0 * partitions,
            "time_s": max(0.0, float(time_fit(partitions))),
            "cost_usd": max(0.0, float(cost_fit(partitions))),
            "measured": partitions <= max(measured_partitions),
        })
    return rows
