"""Statistics and model fitting for experiment analysis."""

from repro.analysis.stats import (
    coefficient_of_variation,
    median_ratio,
    percentiles,
    relative_std,
)
from repro.analysis.fitting import (
    PolynomialFit,
    extrapolate_scaling,
    fit_polynomial,
)

__all__ = [
    "PolynomialFit",
    "coefficient_of_variation",
    "extrapolate_scaling",
    "fit_polynomial",
    "median_ratio",
    "percentiles",
    "relative_std",
]
