"""Variability metrics used in the evaluation (Section 4.6).

The paper reports two metrics: *median to base-median ratio* (MR), which
normalizes a region's query-suite runtime by the us-east-1 median, and
the *coefficient of variation* (CoV) as a measure of variability within
one region over time [105].
"""

from __future__ import annotations

from typing import Sequence

import numpy as np


def coefficient_of_variation(samples: Sequence[float]) -> float:
    """CoV = standard deviation / mean, as a fraction.

    Uses the population standard deviation, matching the runtime
    measurement methodology of [105].
    """
    values = np.asarray(list(samples), dtype=np.float64)
    if len(values) == 0:
        raise ValueError("CoV of an empty sample")
    mean = float(np.mean(values))
    if mean == 0:
        raise ValueError("CoV undefined for zero mean")
    return float(np.std(values)) / mean


def relative_std(samples: Sequence[float]) -> float:
    """Relative standard deviation in percent (Figure 11 reports %)."""
    return coefficient_of_variation(samples) * 100.0


def median_ratio(samples: Sequence[float],
                 base_samples: Sequence[float]) -> float:
    """MR: this sample's median over the base region's median."""
    values = np.asarray(list(samples), dtype=np.float64)
    base = np.asarray(list(base_samples), dtype=np.float64)
    if len(values) == 0 or len(base) == 0:
        raise ValueError("median ratio of empty samples")
    base_median = float(np.median(base))
    if base_median == 0:
        raise ValueError("base median is zero")
    return float(np.median(values)) / base_median


def percentiles(samples: Sequence[float],
                points: Sequence[float] = (50, 95, 99, 100)) -> dict[float, float]:
    """Selected percentiles of a sample."""
    values = np.asarray(list(samples), dtype=np.float64)
    if len(values) == 0:
        raise ValueError("percentiles of an empty sample")
    return {p: float(np.percentile(values, p)) for p in points}
