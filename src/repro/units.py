"""Byte, time, and rate unit constants used across the library.

All simulation-internal quantities are plain floats in **bytes** and
**seconds**; these constants make call sites read like the paper
("64 * MiB", "1.2 * GiB_PER_S").
"""

from __future__ import annotations

KB = 1_000
MB = 1_000_000
GB = 1_000_000_000
TB = 1_000_000_000_000

KiB = 1024
MiB = 1024 ** 2
GiB = 1024 ** 3
TiB = 1024 ** 4

MILLISECOND = 1e-3
SECOND = 1.0
MINUTE = 60.0
HOUR = 3600.0
DAY = 86400.0
MONTH = 30 * DAY

#: Network rates quoted by AWS are decimal gigabits per second.
Gbps = 1e9 / 8.0
Mbps = 1e6 / 8.0


def gib_per_s(value_bytes_per_s: float) -> float:
    """Convert bytes/second to GiB/second for reporting."""
    return value_bytes_per_s / GiB


def mib_per_s(value_bytes_per_s: float) -> float:
    """Convert bytes/second to MiB/second for reporting."""
    return value_bytes_per_s / MiB


def fmt_bytes(num_bytes: float) -> str:
    """Human-readable binary-unit formatting of a byte count."""
    value = float(num_bytes)
    for unit in ("B", "KiB", "MiB", "GiB", "TiB"):
        if abs(value) < 1024.0 or unit == "TiB":
            return f"{value:.1f} {unit}" if unit != "B" else f"{value:.0f} B"
        value /= 1024.0
    raise AssertionError("unreachable")


def fmt_duration(seconds: float) -> str:
    """Human-readable duration (s / min / h / d)."""
    if seconds < 120:
        return f"{seconds:.0f}s"
    if seconds < 2 * HOUR:
        return f"{seconds / MINUTE:.0f}min"
    if seconds < 2 * DAY:
        return f"{seconds / HOUR:.0f}h"
    return f"{seconds / DAY:.0f}d"
