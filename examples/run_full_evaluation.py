"""Scenario: drive the framework through a slice of the paper's evaluation.

Uses the predefined experiment suites (``repro.core.suites``) and the
framework :class:`~repro.core.Driver` exactly as Figure 3 describes:
config in, JSON result (with cost estimate) out. Results land under
``results/`` next to this script.

Run with::

    python examples/run_full_evaluation.py            # a quick subset
    python examples/run_full_evaluation.py --full     # everything
"""

import sys
from pathlib import Path

sys.path.insert(0, str(Path(__file__).parent.parent / "src"))

from repro.core import Driver
from repro.core.suites import (
    full_evaluation,
    network_suite,
    query_suite,
    startup_suite,
)

RESULTS_DIR = Path(__file__).parent / "results"


def main() -> None:
    if "--full" in sys.argv:
        configs = full_evaluation()
    else:
        # A quick subset: one experiment per section.
        configs = [network_suite()[0], query_suite()[1],
                   startup_suite()[0]]
    driver = Driver()
    total_cost = 0.0
    for config in configs:
        print(f"running {config.name} ({config.kind}) ...", flush=True)
        result = driver.run(config)
        path = result.save(RESULTS_DIR / f"{config.name}.json")
        total_cost += result.cost_usd
        headline = ", ".join(f"{k}={v:.4g}"
                             for k, v in list(result.metrics.items())[:3])
        print(f"  -> {headline}")
        print(f"  -> saved {path} (estimated cost ${result.cost_usd:.4f})")
    print(f"\n{len(configs)} experiments, estimated total cloud cost "
          f"${total_cost:.2f} (the paper's full evaluation cost ~$4,000).")


if __name__ == "__main__":
    main()
