"""Fault-tolerant query execution under a chaos fault plan.

Runs the same query sequence three ways:

1. fault-free baseline;
2. under the ``demo-outage`` plan *without* recovery — the pre-recovery
   engine behaviour, where an injected worker crash kills the query;
3. under the same plan *with* task-level retries and hedging — every
   query completes, and the resilience report itemizes what recovery
   cost in extra runtime and cents.

Run with::

    python examples/fault_tolerant_query.py
"""

import sys
from pathlib import Path

sys.path.insert(0, str(Path(__file__).parent.parent / "src"))

from repro.chaos import get_plan
from repro.chaos.runner import run_chaos_suite
from repro.engine.coordinator import RecoveryConfig


def main() -> None:
    plan = get_plan("demo-outage")
    print(f"fault plan {plan.name!r}: {plan.description}")
    for spec in plan.specs:
        print(f"  - {spec.kind}: p={spec.probability}, "
              f"delay={spec.delay_s}s, max={spec.max_events}")
    print()

    # Without recovery (the pre-recovery engine: one attempt, no hedges)
    # injected crashes surface as FragmentFailure and kill queries.
    fragile = run_chaos_suite(
        plan, repeats=2, seed=0, baseline=False,
        recovery=RecoveryConfig(max_attempts=1, hedge_enabled=False))
    print("--- recovery disabled (max_attempts=1) ---")
    print(f"goodput {fragile.goodput * 100:.0f}%: "
          f"{fragile.unrecovered} of {fragile.offered} queries failed")
    for outcome in fragile.outcomes:
        if not outcome.ok:
            print(f"  {outcome.query} run {outcome.run}: {outcome.error}")
    print()

    # With retries + hedging, the same fault sequence is absorbed: the
    # baseline pass makes the report show the latency/cost of recovery.
    print("--- recovery enabled (retries + hedging) ---")
    report = run_chaos_suite(plan, repeats=2, seed=0)
    print(report.format())
    print()
    print(f"recovery overhead: +{report.total_recovery_latency_s:.2f}s "
          f"runtime, +{report.total_cost_overhead_cents:.4f} cents "
          f"({report.total_retry_cost_cents:.4f} cents of retried/hedged "
          f"compute)")


if __name__ == "__main__":
    main()
