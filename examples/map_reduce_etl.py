"""Map-reduce ETL over a partitioned storage prefix with the futures API.

Demonstrates the Lithops-style programming model the ``repro.futures``
subsystem provides on top of the simulated Lambda platform and S3:

1. a seeded corpus of fixed-width records is written under one prefix;
2. the **partitioner** splits it into byte-range chunks aligned on
   record boundaries (one mapper call per chunk);
3. ``FunctionExecutor.map_reduce`` fans a word counter out over the
   chunks (ranged GETs through the retrying client) and merges the
   per-chunk counts in a single reducer call;
4. the same job re-runs under the ``futures-chaos`` fault plan — the
   invoker's retries absorb the injected worker crashes, and the cost
   delta of recovery is itemized.

Both outcomes (and the per-future cost audit against the pricing
catalog) are written to ``examples/results/map_reduce_etl.json``.

Run with::

    python examples/map_reduce_etl.py
"""

import sys
from pathlib import Path

sys.path.insert(0, str(Path(__file__).parent.parent / "src"))

from repro.chaos import get_plan
from repro.futures.workloads import run_wordcount
from repro.telemetry.export import canonical_json

RESULTS = Path(__file__).parent / "results" / "map_reduce_etl.json"


def describe(label: str, outcome: dict) -> None:
    print(f"{label}:")
    print(f"  {outcome['chunks']} chunks over {outcome['objects']} objects "
          f"-> {outcome['records']} records, "
          f"{outcome['distinct_words']} distinct words")
    top_word, top_count = outcome["top"][0]
    print(f"  top word: {top_word!r} x{top_count}")
    print(f"  runtime {outcome['runtime_s']:.3f}s simulated, "
          f"total cost ${outcome['total_cost_usd']:.6f} "
          f"(cost check: {outcome['cost_check']})")
    print(f"  states {outcome['states']}, retries {outcome['retries']}, "
          f"faults {outcome['faults'] or 'none'}")
    print(f"  digest {outcome['digest']}")


def main() -> None:
    clean = run_wordcount(seed=7)
    chaos = run_wordcount(seed=7, plan=get_plan("futures-chaos"))

    describe("fault-free map-reduce", clean)
    print()
    describe("under the futures-chaos plan", chaos)

    overhead = chaos["total_cost_usd"] - clean["total_cost_usd"]
    print(f"\nrecovery overhead: {chaos['retries']} retries, "
          f"+${overhead:.6f} "
          f"({100.0 * overhead / clean['total_cost_usd']:.1f}% of the "
          f"fault-free cost)")

    RESULTS.parent.mkdir(parents=True, exist_ok=True)
    RESULTS.write_text(canonical_json(
        {"fault_free": clean, "futures_chaos": chaos}) + "\n")
    print(f"results -> {RESULTS}")


if __name__ == "__main__":
    main()
