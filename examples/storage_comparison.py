"""Scenario: choose a serverless storage service for a data workload.

Walks through the Section 4.3 comparison: aggregate throughput, request
rates, and latency distributions of S3 Standard, S3 Express, DynamoDB,
and EFS — then applies the Section 5.3 break-even rules to decide where
a concrete workload's data should live.

Run with::

    python examples/storage_comparison.py
"""

import sys
from pathlib import Path

sys.path.insert(0, str(Path(__file__).parent.parent / "src"))

from repro import units
from repro.core import CloudSim, format_table
from repro.core.micro import (
    run_storage_iops,
    run_storage_latency,
    run_storage_throughput,
)
from repro.pricing import STORAGE_PRICES
from repro.pricing.breakeven import break_even_interval_requests
from repro.pricing.catalog import MARGINAL_RAM_PER_GIB_HOUR

SERVICES = ["s3-standard", "s3-express", "dynamodb", "efs-1"]
OBJECT_SIZES = {"s3-standard": 64 * units.MiB, "s3-express": 64 * units.MiB,
                "dynamodb": 400 * units.KiB, "efs-1": 4 * units.MiB}


def main() -> None:
    rows = []
    for service in SERVICES:
        throughput = run_storage_throughput(
            CloudSim(seed=1), service, clients=128,
            object_bytes=OBJECT_SIZES[service])
        iops = run_storage_iops(CloudSim(seed=1), service)
        latency = run_storage_latency(CloudSim(seed=1), service,
                                      request_count=100_000)
        rows.append([
            service,
            f"{throughput.achieved / units.GiB:,.1f}",
            f"{iops.achieved_read:,.0f}",
            f"{latency['read']['p50'] * 1e3:.1f}",
            f"{latency['read']['p95'] * 1e3:.1f}",
        ])
    print(format_table(
        ["Service", "Read [GiB/s]", "Read IOPS", "p50 [ms]", "p95 [ms]"],
        rows, title="Serverless storage comparison (128 client VMs)"))

    print("\ntakeaways (Section 4.3.4):")
    print(" * S3 Standard: the scalable-throughput workhorse, but low")
    print("   out-of-the-box IOPS and the highest latency.")
    print(" * S3 Express: highest IOPS at consistent low latency — at a")
    print("   premium, and per-byte transfer fees.")
    print(" * DynamoDB: lowest latency, lowest throughput.")
    print(" * EFS: balanced, but dominated by S3 Express at its price.")

    # Economic data tiering: when is re-reading from S3 cheaper than
    # caching in RAM?
    ram = MARGINAL_RAM_PER_GIB_HOUR / 1024.0
    print("\ncaching break-even against RAM (five-minute rule, Table 7):")
    for size in (4 * units.KiB, 4 * units.MiB, 16 * units.MiB):
        interval = break_even_interval_requests(
            size, STORAGE_PRICES["s3-standard"], ram)
        print(f"  {units.fmt_bytes(size):>9} accesses: keep in RAM if "
              f"re-read more often than every {units.fmt_duration(interval)}")
    print("\n=> cold, MiB-sized data belongs in object storage; warm data")
    print("   on VM-attached SSDs (Section 6, economic data tiering).")


if __name__ == "__main__":
    main()
