"""Quickstart: run a TPC-H query on the simulated serverless stack.

Builds a simulated AWS region (Lambda + S3 on a discrete-event network
fabric), loads a shrunken TPC-H lineitem table whose partition files
keep the paper's SF1000 density, deploys the Skyrise query engine as
cloud functions, and executes TPC-H Q6 end to end.

Run with::

    python examples/quickstart.py
"""

import sys
from pathlib import Path

sys.path.insert(0, str(Path(__file__).parent.parent / "src"))

from repro import units
from repro.core import CloudSim, format_table
from repro.datagen import load_table, scaled_spec
from repro.engine import SkyriseEngine
from repro.engine.queries import tpch_q6


def main() -> None:
    # 1. A simulated AWS region: event-driven clock, network fabric,
    #    Lambda platform, and storage services.
    sim = CloudSim(seed=42)
    s3 = sim.s3()

    # 2. Load TPC-H lineitem: 12 partition files at SF1000 density
    #    (182.4 MiB logical each) with laptop-sized physical rows.
    spec = scaled_spec("lineitem", partitions=12, rows_per_partition=512)
    metadata = sim.run(load_table(sim.env, s3, spec))
    print(f"loaded {metadata.partition_count} partitions, "
          f"{metadata.total_rows:,} rows, "
          f"{metadata.total_logical_bytes / units.GiB:.1f} GiB logical")

    # 3. Deploy the Skyrise engine onto the Lambda platform.
    engine = SkyriseEngine(sim.env, sim.platform,
                           storage={"s3-standard": s3})
    engine.register_table(metadata)
    engine.deploy()

    # 4. Run TPC-H Q6. The coordinator function compiles a distributed
    #    plan with burst-aware worker sizing and fans out worker
    #    functions; intermediates flow through S3.
    result = sim.run(engine.run_query(tpch_q6()))

    print(f"\nQ6 revenue: {result.batch.column('revenue')[0]:,.2f}")
    print(format_table(
        ["Metric", "Value"],
        [["Query runtime [s]", f"{result.runtime:.2f}"],
         ["Scan workers", result.fragments["scan"]],
         ["Cumulated function time [s]", f"{result.cumulated_time:.1f}"],
         ["Storage requests", result.requests],
         ["Query cost [cents]", f"{result.cost_cents:.3f}"]],
        title="Execution summary"))
    print("\nPer-stage breakdown:")
    for stage in result.stages:
        print(f"  {stage.pipeline:<8} fragments={stage.fragments:<4} "
              f"duration={stage.duration:.3f}s "
              f"read={stage.bytes_read / units.MiB:,.0f} MiB")


if __name__ == "__main__":
    main()
