"""Scenario: watch the platform breathe — live telemetry on two workloads.

Part 1 replays the Figure 5 network-burst microbenchmark with telemetry
recording on: the function's ingress token bucket drains at burst rate,
throttles to baseline, half-refills during the 3 s pause, and drains
again — and this time the *shaper itself* reports it, as token-level /
allowed-rate time series and throttle-transition events, rather than
the experiment inferring it from throughput samples.

Part 2 traces TPC-H Q12 end to end and exports a Chrome-trace JSON:
coordinator → stage → worker spans with per-phase and per-storage-call
children, loadable in ui.perfetto.dev (or chrome://tracing), plus the
canonical metrics snapshot.

Run with::

    python examples/telemetry_deep_dive.py
"""

import sys
from pathlib import Path

sys.path.insert(0, str(Path(__file__).parent.parent / "src"))

from repro.core import CloudSim
from repro.core.micro.network import run_function_network_burst
from repro.telemetry import (
    canonical_json,
    chrome_trace,
    metrics_snapshot,
    recording,
    render_dashboard,
    sparkline,
)
from repro.workloads.suite import SuiteSetup, build_plan, setup_engine

RESULTS = Path(__file__).parent / "results"


def figure5_with_live_shaper_telemetry() -> None:
    print("=" * 72)
    print("Part 1: Figure 5 burst replay, observed from inside the shaper")
    print("=" * 72)
    with recording() as recorder:
        sim = CloudSim(seed=5)
        first, second = run_function_network_burst(sim, duration=5.0,
                                                   break_s=3.0)
    print(f"first run:  {first.mean_rate / 1e9:.2f} GB/s mean")
    print(f"second run: {second.mean_rate / 1e9:.2f} GB/s mean "
          f"(half-refilled bucket)")
    transitions = recorder.metrics.counters[
        "shaper.throttle_transitions"].value
    print(f"shaper throttle transitions observed: {transitions}")
    for name, series in sorted(recorder.metrics.series.items()):
        if name.startswith("shaper.") and name.endswith(".level") \
                and series.points:
            print(f"  {name} [{len(series.points)} samples]")
            print(f"    {sparkline(series.values(), width=60)}")
    throttle_events = [e for e in recorder.events
                       if e["name"].startswith("shaper.")]
    for event in throttle_events[:6]:
        print(f"  t={event['t']:.3f}s {event['name']} ({event['shaper']})")
    if len(throttle_events) > 6:
        print(f"  ... {len(throttle_events) - 6} more shaper events")


def trace_q12() -> None:
    print()
    print("=" * 72)
    print("Part 2: TPC-H Q12, traced across every layer")
    print("=" * 72)
    with recording() as recorder:
        sim = CloudSim(seed=7)
        setup = SuiteSetup(queries=("tpch-q12",), lineitem_partitions=3,
                           orders_partitions=2, rows_per_partition=96)
        engine = setup_engine(sim, setup)
        result = sim.run(engine.run_query(build_plan("tpch-q12")))
    print(f"runtime {result.runtime:.3f}s, cost {result.cost_cents:.4f}¢, "
          f"{len(recorder.spans)} spans recorded")
    print()
    print(render_dashboard(recorder, series_width=60))

    RESULTS.mkdir(exist_ok=True)
    trace_path = RESULTS / "tpch_q12_trace.json"
    metrics_path = RESULTS / "tpch_q12_metrics.json"
    trace_path.write_text(canonical_json(chrome_trace(recorder)) + "\n")
    metrics_path.write_text(canonical_json(metrics_snapshot(recorder)) + "\n")
    print()
    print(f"wrote {trace_path}")
    print(f"  -> open ui.perfetto.dev and drop the file in to see the")
    print(f"     coordinator/stage/worker/storage span hierarchy")
    print(f"wrote {metrics_path}")


def main() -> None:
    figure5_with_live_shaper_telemetry()
    trace_q12()


if __name__ == "__main__":
    main()
