"""Scenario: characterize a cloud function's network rate limiting.

Reproduces the Section 4.2 methodology interactively: run the iPerf
measurement function on the FaaS platform, sample throughput at 20 ms,
and derive the token-bucket parameters (burst rate, baseline rate,
budget, refill-on-idle) that a serverless data system should plan its
per-worker scan volumes around.

Run with::

    python examples/network_burst_analysis.py
"""

import sys
from pathlib import Path

sys.path.insert(0, str(Path(__file__).parent.parent / "src"))

from repro import units
from repro.core import CloudSim, ascii_timeseries
from repro.core.micro import run_function_network_burst


def main() -> None:
    sim = CloudSim(seed=7)
    print("measuring: 5 s download, 3 s break, 5 s download ...")
    first, second = run_function_network_burst(sim, duration=5.0,
                                               break_s=3.0)

    profile = first.burst_profile()
    print(ascii_timeseries(
        [(t, r / units.GiB) for t, r in
         zip(first.series.times(), first.series.rates())],
        title="Inbound throughput, first run [GiB/s at 20 ms]",
        height=10))

    print(f"\nburst rate      : {profile.burst_rate / units.GiB:.2f} GiB/s")
    print(f"burst duration  : {profile.burst_duration * 1e3:.0f} ms")
    print(f"token budget    : {profile.bucket_bytes / units.MiB:.0f} MiB")
    print(f"baseline rate   : {profile.baseline_rate / units.MiB:.0f} MiB/s")

    second_profile = second.burst_profile()
    ratio = second_profile.bucket_bytes / profile.bucket_bytes
    print(f"\nafter a 3 s break, the second burst carries "
          f"{second_profile.bucket_bytes / units.MiB:.0f} MiB "
          f"({ratio:.0%} of the first): the bucket refills halfway.")

    budget = profile.bucket_bytes
    print(f"\nplanning guidance: keep per-worker scan volumes at or below "
          f"~{budget / units.MiB:.0f} MiB; beyond that, workers fall to "
          f"{profile.baseline_rate / units.MiB:.0f} MiB/s and scan-heavy "
          f"queries slow down by up to ~2x (cf. Figure 14).")


if __name__ == "__main__":
    main()
