"""Scenario: should this analytics workload run on Lambda or on VMs?

Runs the same TPC-H queries on both deployments of the Skyrise engine
(cloud functions vs a provisioned EC2 cluster via the shim layer),
measures runtime and cost, and computes the break-even query throughput
below which the serverless deployment is the economical choice
(Section 5.2).

Run with::

    python examples/faas_vs_iaas_economics.py
"""

import sys
from pathlib import Path

sys.path.insert(0, str(Path(__file__).parent.parent / "src"))

from repro.core import CloudSim, format_table
from repro.datagen import load_table, scaled_spec
from repro.engine import SkyriseEngine
from repro.engine.queries import tpch_q6, tpch_q12
from repro.iaas import VmShim
from repro.pricing import ec2_instance, faas_break_even_queries_per_hour

LINEITEM_PARTITIONS = 24
ORDERS_PARTITIONS = 6


def build(backend: str):
    sim = CloudSim(seed=3)
    s3 = sim.s3()
    lineitem = sim.run(load_table(sim.env, s3, scaled_spec(
        "lineitem", LINEITEM_PARTITIONS, rows_per_partition=64)))
    orders = sim.run(load_table(sim.env, s3, scaled_spec(
        "orders", ORDERS_PARTITIONS, rows_per_partition=256)))
    if backend == "faas":
        platform = sim.platform
    else:
        instances = sim.run(sim.fleet.provision(
            "c6g.xlarge", count=LINEITEM_PARTITIONS + ORDERS_PARTITIONS + 2))
        platform = VmShim(sim.env, instances, slots_per_vm=1)
    engine = SkyriseEngine(sim.env, platform, storage={"s3-standard": s3})
    engine.register_table(lineitem)
    engine.register_table(orders)
    engine.deploy()
    return sim, engine


def main() -> None:
    plans = {
        "Q6": tpch_q6(scan_fragments=LINEITEM_PARTITIONS),
        "Q12": tpch_q12(lineitem_fragments=LINEITEM_PARTITIONS,
                        orders_fragments=ORDERS_PARTITIONS,
                        join_fragments=12),
    }
    vm = ec2_instance("c6g.xlarge")
    rows = []
    for name, plan in plans.items():
        sim_f, engine_f = build("faas")
        sim_f.run(engine_f.run_query(plan))  # warm the functions
        faas = sim_f.run(engine_f.run_query(plan))
        sim_v, engine_v = build("iaas")
        iaas = sim_v.run(engine_v.run_query(plan))
        break_even = faas_break_even_queries_per_hour(
            faas_cost_per_query=faas.cost_cents / 100.0,
            vm_hourly_usd=vm.hourly_usd, peak_vms=faas.peak_fragments)
        rows.append([
            name,
            f"{iaas.runtime:.2f}",
            f"{faas.runtime:.2f}",
            f"{faas.cost_cents:.3f}",
            f"{break_even:,.0f}",
            f"{faas.peak_to_average_nodes():.2f}x",
        ])
    print(format_table(
        ["Query", "IaaS [s]", "FaaS [s]", "FaaS cost [c]",
         "Break-even [Q/h]", "Peak/avg nodes"],
        rows, title="FaaS vs IaaS deployment economics"))
    print("\nreading the table:")
    print(" * FaaS runtimes carry per-stage invocation overhead, so they")
    print("   trail the pre-provisioned cluster slightly (Section 5.2).")
    print(" * Below the break-even throughput, pay-per-query beats paying")
    print("   for a peak-provisioned cluster around the clock.")
    print(" * The peak-to-average node ratio is the additional saving")
    print("   intra-query elasticity offers over static provisioning.")


if __name__ == "__main__":
    main()
