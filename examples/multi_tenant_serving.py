"""Multi-tenant serving: three tenants, one overloaded platform.

Runs the canonical 3-tenant Poisson mix (latency-sensitive dashboards,
ad-hoc analytics, background ETL) through the serving layer twice — once
with FIFO scheduling, once with weighted fair share — over the *same*
deterministic overload trace, then shows what the policy buys the
high-priority tenant: an order of magnitude off its p99 latency and its
SLO back, paid for by the batch stream queuing (and shedding) harder.

Also demonstrates the warm-pool manager: keep-alive pings that hold
worker sandboxes hot between arrivals, with their cost accounted.

Run with::

    python examples/multi_tenant_serving.py
"""

import sys
from pathlib import Path

sys.path.insert(0, str(Path(__file__).parent.parent / "src"))

from repro.serve import default_tenant_mix, run_serving_workload


def main() -> None:
    # Overload: 6x the baseline arrival rates against a governor that
    # admits one query at a time — a sustained backlog every policy has
    # to triage. Identical seed => identical arrival trace per policy.
    outcomes = {}
    for policy in ("fifo", "fair"):
        outcomes[policy] = run_serving_workload(
            default_tenant_mix(rate_scale=6.0), policy=policy,
            window_s=180.0, seed=1, max_concurrent_queries=1)
        print(outcomes[policy].format_report())
        print()

    fifo = outcomes["fifo"].reports["interactive"]
    fair = outcomes["fair"].reports["interactive"]
    print(f"interactive tenant p99: {fifo.latency_p99:.1f}s under FIFO -> "
          f"{fair.latency_p99:.1f}s under weighted fair share "
          f"({fifo.latency_p99 / max(fair.latency_p99, 1e-9):.1f}x better)")
    print(f"interactive SLO attainment: {fifo.slo_attainment * 100:.0f}% "
          f"-> {fair.slo_attainment * 100:.0f}%")

    # Warm pools: sparse traffic on a cold platform pays coldstarts;
    # keep-alive pings trade a few cents for warm sandboxes.
    sparse = [w for w in default_tenant_mix() if w.tenant.name == "batch"]
    pooled = run_serving_workload(
        sparse, policy="fifo", window_s=180.0, seed=5,
        warm_targets={"skyrise-worker": 2, "skyrise-coordinator": 1},
        warm_interval_s=60.0)
    stats = pooled.warm_stats
    print(f"\nwarm pool: {stats.pings} pings, "
          f"hit rate {stats.hit_rate * 100:.0f}%, "
          f"coldstart rate {stats.cold_start_rate * 100:.0f}%, "
          f"keep-alive spend ${pooled.warm_cost_usd:.4f}")


if __name__ == "__main__":
    main()
