"""Scenario: trace a distributed query's execution across its workers.

The engine traces runtime information with query context; since all
simulated workers share one virtual clock (the paper relies on tightly
synchronized clocks), per-fragment spans are directly comparable. This
example runs TPC-H Q12, renders a Gantt chart of every worker, and
reports stage skew and stragglers.

Run with::

    python examples/query_tracing.py
"""

import sys
from pathlib import Path

sys.path.insert(0, str(Path(__file__).parent.parent / "src"))

from repro.core import CloudSim
from repro.datagen import load_table, scaled_spec
from repro.engine import SkyriseEngine
from repro.engine.queries import tpch_q12
from repro.engine.tracing import trace_from_records


def main() -> None:
    sim = CloudSim(seed=8)
    s3 = sim.s3()
    lineitem = sim.run(load_table(
        sim.env, s3, scaled_spec("lineitem", 8, rows_per_partition=256)))
    orders = sim.run(load_table(
        sim.env, s3, scaled_spec("orders", 4, rows_per_partition=512)))
    engine = SkyriseEngine(sim.env, sim.platform,
                           storage={"s3-standard": s3})
    engine.register_table(lineitem)
    engine.register_table(orders)
    engine.deploy()

    plan = tpch_q12(join_fragments=4)
    result = sim.run(engine.run_query(plan))
    trace = trace_from_records(plan.query_id, sim.platform.records)

    print(trace.render_gantt(width=60))
    print("\nlegend: '.' = queueing/startup, '#' = executing,")
    print("        'C' = coldstart, 'w' = warm sandbox\n")
    for pipeline in trace.pipelines():
        spans = trace.stage(pipeline)
        stragglers = trace.stragglers(pipeline)
        print(f"{pipeline:<14} fragments={len(spans):<4} "
              f"skew={trace.skew(pipeline):.2f}x "
              f"stragglers={[s.fragment for s in stragglers]}")
    print(f"\nquery runtime {result.runtime:.2f}s, "
          f"makespan across workers {trace.makespan():.2f}s")
    print("result:", result.batch.to_pydict())


if __name__ == "__main__":
    main()
